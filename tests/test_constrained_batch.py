"""The vectorized constrained-batch mode (batch credit accounting).

Capacity-bounded runs on rectangular compiled trajectories used to fall
back to the fast engine's per-event loop; they now take a vectorized
batch mode that must stay bit-identical to the reference engine.  This
suite pins that contract:

* differential sweeps over (capacity, flow_control, topology) — mesh
  greedy and 3-stage (priority classes), leveled coin/node (wrap
  aliasing), linear arrays — including the hub-star and crossing-flow
  regressions;
* mode dispatch: ``engine="fast"`` on a capacity run must take the
  constrained *batch* path (``last_run_mode == "batch-constrained"``),
  never silently the per-event loop, for routers and emulators alike;
* constrained-specific details: staggered injections, combining with
  credits, deadlock parity under ``flow_control="none"``.
"""

import numpy as np
import pytest

from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.pram.trace import hotspot_step, permutation_step
from repro.routing import (
    DeadlockError,
    FastPathEngine,
    GreedyMeshRouter,
    GreedyRouter,
    LeveledRouter,
    MeshRouter,
    SynchronousEngine,
    make_packets,
)
from repro.topology import DAryButterflyLeveled, LinearArray, Mesh2D
from test_fast_engine import assert_stats_equal


def _routed_modes(monkeypatch):
    """Record FastPathEngine.last_run_mode for every run() call."""
    modes: list[str] = []
    orig = FastPathEngine.run

    def spy(self, *args, **kwargs):
        stats = orig(self, *args, **kwargs)
        modes.append(self.last_run_mode)
        return stats

    monkeypatch.setattr(FastPathEngine, "run", spy)
    return modes


class TestDispatch:
    """No silent per-event fallback for capacity runs."""

    def test_engine_reports_constrained_batch(self):
        engine = FastPathEngine(node_capacity=1)
        paths = [[s, 5, 6] for s in range(5)]
        engine.run(make_packets(range(5), [6] * 5), paths, num_nodes=7, max_steps=50)
        assert engine.last_run_mode == "batch-constrained"

    def test_engine_reports_batch_when_unconstrained(self):
        engine = FastPathEngine()
        paths = [[s, 5, 6] for s in range(5)]
        engine.run(make_packets(range(5), [6] * 5), paths, num_nodes=7, max_steps=50)
        assert engine.last_run_mode == "batch"

    def test_ragged_paths_fall_back_to_event_loop(self):
        engine = FastPathEngine(node_capacity=1)
        paths = [[0, 2, 3], [1, 2, 3, 4]]
        engine.run(make_packets([0, 1], [3, 4]), paths, num_nodes=5, max_steps=50)
        assert engine.last_run_mode == "event"

    @pytest.mark.parametrize("flow", ["none", "credit"])
    def test_mesh_routers_take_constrained_batch(self, monkeypatch, flow):
        modes = _routed_modes(monkeypatch)
        mesh = Mesh2D.square(6)
        n = mesh.num_nodes
        dests = np.random.default_rng(0).permutation(n)
        MeshRouter(
            mesh, seed=1, node_capacity=3, flow_control=flow, engine="fast"
        ).route(np.arange(n), dests, max_steps=4000)
        GreedyMeshRouter(
            mesh, node_capacity=3, flow_control=flow, engine="fast"
        ).route(np.arange(n), dests, max_steps=4000)
        assert modes == ["batch-constrained", "batch-constrained"]

    @pytest.mark.parametrize("intermediate", ["coin", "node"])
    def test_leveled_router_takes_constrained_batch(self, monkeypatch, intermediate):
        modes = _routed_modes(monkeypatch)
        net = DAryButterflyLeveled(2, 4)
        LeveledRouter(
            net,
            intermediate=intermediate,
            seed=2,
            node_capacity=2,
            flow_control="credit",
            engine="fast",
        ).route_random_permutation(max_steps=4000)
        assert modes == ["batch-constrained"]

    def test_emulator_requests_take_constrained_batch(self, monkeypatch):
        modes = _routed_modes(monkeypatch)
        mesh = Mesh2D.square(4)
        n = mesh.num_nodes
        em = MeshEmulator(
            mesh,
            4 * n,
            mode="crcw",
            node_capacity=3,
            flow_control="credit",
            seed=3,
            engine="fast",
        )
        em.emulate_step(hotspot_step(n, 4 * n, hot_addresses=2, seed=4))
        # Request phase(s) constrained-batch; CRCW replies unconstrained.
        assert "batch-constrained" in modes
        assert "event" not in modes


class TestPinnedRegressions:
    """The named workloads from the backpressure/flow-control suites,
    re-pinned through the constrained-batch dispatch."""

    def test_hub_star(self):
        """Five sources through one capacity-1 hub: max_node_load == 1."""
        hub, sink = 5, 6
        paths = [[s, hub, sink] for s in range(5)]

        def route(p):
            if p.node == sink:
                return None
            return sink if p.node == hub else hub

        fast = FastPathEngine(node_capacity=1)
        f = fast.run(
            make_packets(range(5), [sink] * 5), paths, num_nodes=7, max_steps=100
        )
        assert fast.last_run_mode == "batch-constrained"
        r = SynchronousEngine(node_capacity=1).run(
            make_packets(range(5), [sink] * 5), route, max_steps=100
        )
        assert_stats_equal(f, r)
        assert f.completed and f.max_node_load == 1

    def test_crossing_flow(self):
        """The canonical wedge: deadlock under "none", completes under
        "credit" via the escape channel, identically in both engines."""
        paths = [[1, 2, 3], [2, 1, 0]]

        def route(p):
            row = paths[p.pid]
            return None if p.node == p.dest else row[row.index(p.node) + 1]

        with pytest.raises(DeadlockError) as fast_exc:
            FastPathEngine(node_capacity=1).run(
                make_packets([1, 2], [3, 0]), paths, num_nodes=4, max_steps=10**9
            )
        with pytest.raises(DeadlockError) as ref_exc:
            SynchronousEngine(node_capacity=1).run(
                make_packets([1, 2], [3, 0]), route, max_steps=10**9
            )
        assert_stats_equal(fast_exc.value.stats, ref_exc.value.stats)
        assert fast_exc.value.stats.steps == 0  # detected immediately

        engine = FastPathEngine(node_capacity=1, flow_control="credit")
        f = engine.run(
            make_packets([1, 2], [3, 0]), paths, num_nodes=4, max_steps=100
        )
        assert engine.last_run_mode == "batch-constrained"
        r = SynchronousEngine(node_capacity=1, flow_control="credit").run(
            make_packets([1, 2], [3, 0]), route, max_steps=100
        )
        assert_stats_equal(f, r)
        assert f.completed and f.max_node_load <= 1 and f.escape_hops >= 1


class TestCyclicRoutesWithCredit:
    """Routes that are not rank-monotone void invariant I3; whatever
    happens (completion or a detected wedge), both engines must agree
    exactly — including inside the constrained-batch mode."""

    PATHS = [
        [0, 1, 2, 0, 1],
        [1, 2, 0, 1, 2],
        [2, 0, 1, 2, 0],
    ]

    def _route(self, p):
        path = self.PATHS[p.pid]
        k = p.state = (p.state or 0) + 1
        return path[k] if k < len(path) else None

    def _packets(self):
        return make_packets([p[0] for p in self.PATHS], [p[-1] for p in self.PATHS])

    def test_engines_agree(self):
        fast_engine = FastPathEngine(node_capacity=1, flow_control="credit")
        ref_engine = SynchronousEngine(node_capacity=1, flow_control="credit")
        try:
            f = fast_engine.run(
                self._packets(), self.PATHS, num_nodes=3, max_steps=500
            )
            fast_deadlocked = False
        except DeadlockError as exc:
            f = exc.stats
            fast_deadlocked = True
        assert fast_engine.last_run_mode == "batch-constrained"
        try:
            r = ref_engine.run(self._packets(), self._route, max_steps=500)
            ref_deadlocked = False
        except DeadlockError as exc:
            r = exc.stats
            ref_deadlocked = True
        assert fast_deadlocked == ref_deadlocked
        assert_stats_equal(f, r)


def _sweep(make_router, sources, dests, max_steps=20_000):
    runs = [
        make_router(eng).route(sources, dests, max_steps=max_steps)
        for eng in ("fast", "reference")
    ]
    assert_stats_equal(*runs)
    return runs[0]


class TestDifferentialSweep:
    """(capacity, flow_control, topology) grid: field-for-field engine
    agreement plus the capacity invariant on completed runs."""

    @pytest.mark.parametrize("cap", [1, 2, 4])
    @pytest.mark.parametrize("flow", ["none", "credit"])
    def test_linear_hubs(self, cap, flow):
        rng = np.random.default_rng(cap * 7 + len(flow))
        arr = LinearArray(20)
        dests = rng.choice(rng.choice(arr.n, size=2, replace=False), size=arr.n)

        def make(eng):
            return GreedyRouter(
                arr, node_capacity=cap, flow_control=flow, engine=eng
            )

        try:
            stats = _sweep(make, np.arange(arr.n), dests)
        except DeadlockError:
            # "none" may wedge: both engines must agree on that too.
            with pytest.raises(DeadlockError) as fast_exc:
                make("fast").route(np.arange(arr.n), dests, max_steps=20_000)
            with pytest.raises(DeadlockError) as ref_exc:
                make("reference").route(np.arange(arr.n), dests, max_steps=20_000)
            assert_stats_equal(fast_exc.value.stats, ref_exc.value.stats)
            return
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("cap", [2, 3])
    @pytest.mark.parametrize("flow", ["none", "credit"])
    def test_greedy_mesh_many_to_few(self, seed, cap, flow):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(7)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=6, replace=False), size=n)

        def make(eng):
            return GreedyMeshRouter(
                mesh, node_capacity=cap, flow_control=flow, engine=eng
            )

        try:
            stats = _sweep(make, np.arange(n), dests)
        except DeadlockError:
            with pytest.raises(DeadlockError) as fast_exc:
                make("fast").route(np.arange(n), dests, max_steps=20_000)
            with pytest.raises(DeadlockError) as ref_exc:
                make("reference").route(np.arange(n), dests, max_steps=20_000)
            assert_stats_equal(fast_exc.value.stats, ref_exc.value.stats)
            return
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("cap", [2, 4])
    def test_three_stage_priority_classes(self, seed, cap):
        """Furthest-first arbitration + credits: the multi-class virtual
        link machinery under the constrained transmission phase."""
        rng = np.random.default_rng(seed + 50)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=5, replace=False), size=n)

        def make(eng):
            return MeshRouter(
                mesh,
                seed=seed,
                node_capacity=cap,
                flow_control="credit",
                engine=eng,
            )

        stats = _sweep(make, np.arange(n), dests)
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("intermediate", ["coin", "node"])
    @pytest.mark.parametrize("cap", [1, 2])
    def test_leveled_wrap_aliasing(self, intermediate, cap):
        """(pass, level) rank-monotone routes with the wrap identified:
        capacity accounting must see one physical node per alias pair."""
        net = DAryButterflyLeveled(2, 5)
        n = net.column_size
        rng = np.random.default_rng(9)
        dests = rng.integers(4, size=n)

        def make(eng):
            return LeveledRouter(
                net,
                intermediate=intermediate,
                seed=31,
                node_capacity=cap,
                flow_control="credit",
                engine=eng,
            )

        stats = _sweep(make, np.arange(n), dests)
        assert stats.completed
        assert stats.max_node_load <= cap
        assert stats.escape_hops > 0  # tight caps exercise the channel

    def test_combining_with_credits(self):
        """CRCW combining + capacity: escape landings bypass combining,
        pops release combine residency, identically in both engines."""
        rng = np.random.default_rng(17)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        addresses = rng.integers(5, size=n)
        dests = (addresses * 11) % n
        runs = []
        for eng in ("fast", "reference"):
            router = MeshRouter(
                mesh,
                seed=23,
                combine=True,
                node_capacity=2,
                flow_control="credit",
                engine=eng,
            )
            pkts = make_packets(
                list(range(n)), dests.tolist(), addresses=addresses.tolist()
            )
            runs.append(router.route(None, None, packets=pkts, max_steps=20_000))
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].combines > 0

    def test_staggered_injections(self):
        """Later injections enter mid-run (outside the credit protocol,
        invariant I1) and must interleave identically."""
        arr = LinearArray(12)

        def nh(p):
            return None if p.node == p.dest else arr.route_next(p.node, p.dest)

        def packets():
            pkts = make_packets([0, 0, 11, 4], [11, 11, 0, 9])
            pkts[1].injected_at = 3
            pkts[2].injected_at = 5
            return pkts

        fast_engine = FastPathEngine(node_capacity=1, flow_control="credit")
        paths = [
            list(range(0, 12)),
            list(range(0, 12)),
            list(range(11, -1, -1)),
            list(range(4, 10)),
        ]
        lengths = [len(p) - 1 for p in paths]
        width = max(lengths) + 1
        padded = np.asarray(
            [p + [p[-1]] * (width - len(p)) for p in paths], dtype=np.int64
        )
        f = fast_engine.run(
            packets(),
            padded,
            num_nodes=12,
            max_steps=1000,
            path_lengths=lengths,
        )
        assert fast_engine.last_run_mode == "batch-constrained"
        r = SynchronousEngine(node_capacity=1, flow_control="credit").run(
            packets(), nh, max_steps=1000
        )
        assert_stats_equal(f, r)
        assert f.completed

    def test_two_tuple_links_derive_dst_from_traversed_positions(self):
        """``links=(mat, src)`` pairs make the engine derive link_dst
        itself; padded self-loop columns alias *real* arithmetic link
        ids on the mesh and must not clobber their targets."""
        from repro.topology.compiled import compile_mesh

        mesh = Mesh2D.square(6)
        compiled = compile_mesh(mesh)
        n = mesh.num_nodes
        rng = np.random.default_rng(3)
        dests = rng.choice(rng.choice(n, size=3, replace=False), size=n)
        plan = compiled.three_stage(list(range(n)), dests.tolist())
        engine = FastPathEngine(node_capacity=2, flow_control="credit")
        f = engine.run(
            make_packets(list(range(n)), dests.tolist()),
            plan.ids,
            num_nodes=n,
            max_steps=8000,
            path_lengths=plan.lengths,
            links=(compiled.link_matrix(plan.ids), compiled.link_arrays()[0]),
        )
        assert engine.last_run_mode == "batch-constrained"
        r = GreedyMeshRouter(
            mesh, node_capacity=2, flow_control="credit", engine="reference"
        ).route(np.arange(n), dests, max_steps=8000)
        assert_stats_equal(f, r)
        assert f.completed

    def test_emulator_step_costs_match(self):
        """End-to-end: CRCW leveled emulation with credits, constrained
        requests + unconstrained reply fan-out, equal step costs."""
        net = DAryButterflyLeveled(2, 4)
        n = net.column_size
        space = 4 * n
        steps = [
            hotspot_step(n, space, hot_addresses=3, hot_fraction=0.5, seed=41),
            permutation_step(n, space, seed=42),
        ]
        costs = []
        for eng in ("fast", "reference"):
            em = LeveledEmulator(
                net,
                space,
                mode="crcw",
                node_capacity=2,
                flow_control="credit",
                seed=13,
                engine=eng,
            )
            costs.append([em.emulate_step(s) for s in steps])
        for a, b in zip(*costs):
            assert (a.request_steps, a.reply_steps, a.combines, a.max_queue) == (
                b.request_steps,
                b.reply_steps,
                b.combines,
                b.max_queue,
            )
