"""Tests for the synchronous engine, packets, queues, and metrics."""

import pytest

from repro.routing import (
    FIFOQueue,
    FurthestFirstQueue,
    Packet,
    RoutingTimeout,
    SynchronousEngine,
    collect_stats,
    make_packets,
    route_with_function,
)
from repro.routing.queues import furthest_first_factory
from repro.topology import LinearArray


def line_next_hop(array):
    def next_hop(p):
        if p.node == p.dest:
            return None
        return array.route_next(p.node, p.dest)

    return next_hop


class TestPacket:
    def test_latency_and_delay(self):
        p = Packet(0, 0, 3)
        p.hops = 3
        p.arrived_at = 5
        assert p.latency == 5
        assert p.delay == 2

    def test_latency_requires_delivery(self):
        p = Packet(0, 0, 3)
        with pytest.raises(ValueError):
            _ = p.latency

    def test_absorb_builds_tree(self):
        a, b, c = Packet(0, 0, 9), Packet(1, 1, 9), Packet(2, 2, 9)
        a.absorb(b)
        b.absorb(c)
        reps = {p.pid for p in a.all_represented()}
        assert reps == {0, 1, 2}

    def test_double_absorb_rejected(self):
        a, b = Packet(0, 0, 9), Packet(1, 1, 9)
        a.absorb(b)
        with pytest.raises(ValueError):
            a.absorb(b)

    def test_make_packets_validates(self):
        with pytest.raises(ValueError):
            make_packets([1, 2], [3])

    def test_make_packets_addresses(self):
        pkts = make_packets([0, 1], [2, 3], addresses=[10, 11])
        assert [p.address for p in pkts] == [10, 11]


class TestQueues:
    def test_fifo_order(self):
        q = FIFOQueue()
        a, b = Packet(0, 0, 1), Packet(1, 0, 1)
        q.push(a)
        q.push(b)
        assert q.peek() is a
        assert q.pop() is a
        assert q.pop() is b

    def test_furthest_first_order(self):
        q = FurthestFirstQueue(priority=lambda p: abs(p.dest - p.node))
        near, far = Packet(0, 0, 1), Packet(1, 0, 9)
        q.push(near)
        q.push(far)
        assert q.pop() is far
        assert q.pop() is near

    def test_furthest_first_fifo_ties(self):
        q = FurthestFirstQueue(priority=lambda p: 1.0)
        a, b = Packet(0, 0, 5), Packet(1, 0, 5)
        q.push(a)
        q.push(b)
        assert q.pop() is a

    def test_find_combinable(self):
        q = FIFOQueue()
        a = Packet(0, 0, 9, kind="read", address=42)
        q.push(a)
        assert q.find_combinable(("read", 42, 9)) is a
        assert q.find_combinable(("read", 43, 9)) is None

    def test_find_combinable_tracks_pops(self):
        # The O(1) side index must forget popped packets.
        q = FIFOQueue()
        a = Packet(0, 0, 9, kind="read", address=42)
        b = Packet(1, 1, 9, kind="read", address=42)
        q.push(a)
        q.push(b)
        assert q.find_combinable(("read", 42, 9)) is a  # earliest first
        assert q.pop() is a
        assert q.find_combinable(("read", 42, 9)) is b
        q.pop()
        assert q.find_combinable(("read", 42, 9)) is None

    def test_find_combinable_ignores_addressless(self):
        q = FIFOQueue()
        q.push(Packet(0, 0, 9))  # no address -> no combine key
        assert q.find_combinable(("data", None, 9)) is None

    def test_furthest_first_find_combinable(self):
        q = FurthestFirstQueue(priority=lambda p: abs(p.dest - p.node))
        near = Packet(0, 0, 1, kind="read", address=5)
        far = Packet(1, 0, 9, kind="read", address=5)
        q.push(near)
        q.push(far)
        assert q.find_combinable(("read", 5, 9)) is far
        assert q.find_combinable(("read", 5, 1)) is near
        assert q.pop() is far  # priority pop, not FIFO
        assert q.find_combinable(("read", 5, 9)) is None
        assert q.find_combinable(("read", 5, 1)) is near


class TestEngineBasics:
    def test_single_packet_travels_distance(self):
        array = LinearArray(10)
        pkts = make_packets([0], [7])
        stats = route_with_function(pkts, line_next_hop(array), max_steps=100)
        assert stats.completed
        assert stats.steps == 7
        assert pkts[0].hops == 7
        assert pkts[0].delay == 0

    def test_zero_hop_delivery(self):
        array = LinearArray(5)
        pkts = make_packets([3], [3])
        stats = route_with_function(pkts, line_next_hop(array), max_steps=10)
        assert stats.completed
        assert stats.steps == 0
        assert pkts[0].hops == 0

    def test_one_packet_per_link_per_step(self):
        # Two packets from node 0 to node 4 share every link: the second
        # is delayed exactly 1 step behind the first.
        array = LinearArray(5)
        pkts = make_packets([0, 0], [4, 4])
        stats = route_with_function(pkts, line_next_hop(array), max_steps=50)
        assert stats.completed
        assert stats.steps == 5  # 4 hops + 1 queueing delay
        assert sorted(p.delay for p in pkts) == [0, 1]

    def test_opposite_directions_no_conflict(self):
        # Bidirectional links are two directed links: no contention.
        array = LinearArray(5)
        pkts = make_packets([0, 4], [4, 0])
        stats = route_with_function(pkts, line_next_hop(array), max_steps=50)
        assert stats.completed
        assert stats.steps == 4
        assert all(p.delay == 0 for p in pkts)

    def test_timeout_reports_incomplete(self):
        array = LinearArray(20)
        pkts = make_packets([0], [19])
        stats = route_with_function(pkts, line_next_hop(array), max_steps=5)
        assert not stats.completed
        assert stats.delivered == 0

    def test_timeout_raises_when_asked(self):
        array = LinearArray(20)
        engine = SynchronousEngine()
        pkts = make_packets([0], [19])
        with pytest.raises(RoutingTimeout):
            engine.run(pkts, line_next_hop(array), max_steps=5, raise_on_timeout=True)

    def test_max_queue_tracks_contention(self):
        # k packets at node 0 all heading right: queue (0,1) holds k packets.
        array = LinearArray(6)
        k = 4
        pkts = make_packets([0] * k, [5] * k)
        stats = route_with_function(pkts, line_next_hop(array), max_steps=100)
        assert stats.completed
        assert stats.max_queue == k
        assert stats.max_node_load == k

    def test_delayed_injection(self):
        array = LinearArray(6)
        pkts = make_packets([0, 0], [5, 5])
        pkts[1].injected_at = 3
        stats = route_with_function(pkts, line_next_hop(array), max_steps=100)
        assert stats.completed
        # First leaves immediately (arrives t=5); second injected at 3,
        # clear road, arrives 3+5=8.
        assert stats.steps == 8
        assert pkts[1].delay == 0

    def test_drained_network_with_undeliverable_raises(self):
        # next_hop that never delivers packet but network empties is a bug
        def bad_next_hop(p):
            return None if p.node == p.dest else None  # pretend delivered

        pkts = make_packets([0], [5])
        stats = route_with_function(pkts, bad_next_hop, max_steps=10)
        # "delivered" at wrong node still counts as delivered by contract:
        # the policy is responsible for correctness.
        assert stats.completed


class TestEngineCombining:
    def test_same_address_packets_combine(self):
        array = LinearArray(6)
        pkts = make_packets([0, 0, 0], [5, 5, 5], addresses=[7, 7, 7])
        engine = SynchronousEngine(combine=True)
        stats = engine.run(pkts, line_next_hop(array), max_steps=50)
        assert stats.completed
        assert stats.combines == 2
        # Combined flow behaves as one packet: no queueing behind siblings.
        assert stats.steps == 5
        assert all(p.delivered for p in pkts)

    def test_different_addresses_do_not_combine(self):
        array = LinearArray(6)
        pkts = make_packets([0, 0], [5, 5], addresses=[7, 8])
        engine = SynchronousEngine(combine=True)
        stats = engine.run(pkts, line_next_hop(array), max_steps=50)
        assert stats.combines == 0
        assert stats.steps == 6

    def test_no_address_no_combine(self):
        array = LinearArray(6)
        pkts = make_packets([0, 0], [5, 5])
        engine = SynchronousEngine(combine=True)
        stats = engine.run(pkts, line_next_hop(array), max_steps=50)
        assert stats.combines == 0

    def test_combining_inside_priority_queues(self):
        # Combining must also work under furthest-destination-first
        # arbitration (the §3.4 discipline), not just FIFO.
        array = LinearArray(8)
        factory = furthest_first_factory(lambda p: abs(p.dest - p.node))
        pkts = make_packets([0, 0, 0, 0], [7, 7, 5, 7], addresses=[3, 3, 4, 3])
        engine = SynchronousEngine(queue_factory=factory, combine=True)
        stats = engine.run(pkts, line_next_hop(array), max_steps=100)
        assert stats.completed
        assert stats.combines == 2  # the three address-3 readers merge
        assert all(p.delivered for p in pkts)


class TestEngineCapacity:
    def test_node_capacity_limits_load(self):
        array = LinearArray(8)
        k = 6
        pkts = make_packets([0] * k, [7] * k)
        engine = SynchronousEngine(node_capacity=2)
        stats = engine.run(pkts, line_next_hop(array), max_steps=500)
        assert stats.completed
        # Source node itself holds k, but downstream nodes obey the cap.
        assert stats.max_queue >= 1

    def test_node_service_rate_serializes(self):
        # Node 2 receives from both sides and must forward both right;
        # with service rate 1 its two out-queues (2,3),(2,1)... use a Y:
        # two packets both pass through node 2 to different next nodes.
        array = LinearArray(5)

        def next_hop(p):
            if p.node == p.dest:
                return None
            return array.route_next(p.node, p.dest)

        # packets: 2->0 and 2->4: distinct out-links of node 2.
        pkts = make_packets([2, 2], [0, 4])
        par = SynchronousEngine().run(
            [Packet(p.pid, p.source, p.dest) for p in pkts], next_hop, max_steps=50
        )
        ser = SynchronousEngine(node_service_rate=1).run(
            pkts, next_hop, max_steps=50
        )
        assert par.steps == 2  # both leave simultaneously
        assert ser.steps == 3  # serialized: one waits a step

    def test_route_with_function_forwards_service_rate(self):
        # The convenience wrapper used to drop node_service_rate silently.
        array = LinearArray(5)

        def next_hop(p):
            if p.node == p.dest:
                return None
            return array.route_next(p.node, p.dest)

        ser = route_with_function(
            make_packets([2, 2], [0, 4]),
            next_hop,
            max_steps=50,
            node_service_rate=1,
        )
        assert ser.steps == 3  # serialized, matching the engine directly

    def test_service_rate_ties_break_by_activation_order(self):
        # Node 0 drives two equal-length queues; with rate 1 the link
        # that became active first must win the tie, deterministically.
        pkts = make_packets([0, 0], [1, 2])
        order = []

        def next_hop(p):
            if p.node == 0:
                return p.dest
            order.append(p.dest)
            return None

        stats = route_with_function(
            pkts, next_hop, max_steps=50, node_service_rate=1
        )
        assert stats.completed
        assert order == [1, 2]  # packet to 1 enqueued (activated) first


class TestPathTracking:
    def test_trace_records_visited_nodes(self):
        array = LinearArray(6)
        pkts = make_packets([1], [4])
        engine = SynchronousEngine(track_paths=True)
        stats = engine.run(pkts, line_next_hop(array), max_steps=50)
        assert stats.completed
        assert pkts[0].trace == [1, 2, 3, 4]


class TestStats:
    def test_collect_stats_fields(self):
        pkts = make_packets([0, 1], [1, 0])
        pkts[0].hops, pkts[0].arrived_at = 1, 1
        pkts[1].hops, pkts[1].arrived_at = 1, 2
        stats = collect_stats(pkts, steps=2, max_queue=1, completed=True)
        assert stats.delivered == 2
        assert stats.max_delay == 1
        assert stats.mean_delay == 0.5
        assert stats.routing_time == 2

    def test_normalized_time(self):
        pkts = make_packets([0], [1])
        pkts[0].hops, pkts[0].arrived_at = 1, 1
        stats = collect_stats(pkts, steps=10, max_queue=1, completed=True)
        assert stats.normalized_time(5) == 2.0
        with pytest.raises(ValueError):
            stats.normalized_time(0)
