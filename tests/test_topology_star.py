"""Tests for the n-star graph (Definitions 2.4-2.6, §2.3.4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import StarGraph
from repro.topology.star import (
    greedy_move_to_identity,
    perm_rank,
    perm_unrank,
    star_distance_to_identity,
    swap_j,
)


class TestPermCodec:
    def test_rank_unrank_roundtrip_n4(self):
        for r in range(math.factorial(4)):
            assert perm_rank(perm_unrank(r, 4)) == r

    def test_rank_identity_is_zero(self):
        assert perm_rank((0, 1, 2, 3, 4)) == 0

    def test_rank_reverse_is_max(self):
        assert perm_rank((4, 3, 2, 1, 0)) == math.factorial(5) - 1

    def test_unrank_out_of_range(self):
        with pytest.raises(ValueError):
            perm_unrank(math.factorial(4), 4)

    @given(st.permutations(list(range(6))))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, perm):
        perm = tuple(perm)
        assert perm_unrank(perm_rank(perm), 6) == perm


class TestSwap:
    def test_swap_matches_definition(self):
        # SWAP_2 of (a b c d) = (c b a d)
        assert swap_j((0, 1, 2, 3), 2) == (2, 1, 0, 3)

    def test_swap_is_involution(self):
        p = (3, 1, 0, 2)
        for j in range(1, 4):
            assert swap_j(swap_j(p, j), j) == p

    def test_swap_bad_index(self):
        with pytest.raises(ValueError):
            swap_j((0, 1, 2), 0)
        with pytest.raises(ValueError):
            swap_j((0, 1, 2), 3)


class TestStarStructure:
    def test_counts(self):
        s = StarGraph(4)
        assert s.num_nodes == 24
        assert s.degree == 3
        assert s.diameter == 4  # floor(3*(4-1)/2)

    def test_diameter_formula_matches_bfs(self):
        for n in (3, 4, 5):
            s = StarGraph(n)
            assert s.bfs_eccentricity(0) == s.diameter

    def test_vertex_degree(self):
        s = StarGraph(5)
        for v in (0, 17, 100):
            nbrs = s.neighbors(v)
            assert len(nbrs) == 4
            assert len(set(nbrs)) == 4
            assert v not in nbrs

    def test_adjacency_symmetric(self):
        s = StarGraph(4)
        for v in range(s.num_nodes):
            for w in s.neighbors(v):
                assert v in s.neighbors(w)

    def test_three_star_is_six_cycle(self):
        # Figure 2(a): the 3-star is a 6-cycle.
        s = StarGraph(3)
        assert s.num_nodes == 6
        assert all(len(s.neighbors(v)) == 2 for v in range(6))
        assert s.bfs_eccentricity(0) == 3

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            StarGraph(1)


class TestStarDistance:
    def test_distance_formula_identity(self):
        assert star_distance_to_identity((0, 1, 2, 3)) == 0

    def test_distance_formula_front_cycle(self):
        # (1 0 2 3): one 2-cycle involving position 0: m=2,k=1 -> 2+1-2=1
        assert star_distance_to_identity((1, 0, 2, 3)) == 1

    def test_distance_formula_disjoint_cycle(self):
        # (0 2 1 3): 2-cycle not involving position 0: m=2,k=1 -> 3
        assert star_distance_to_identity((0, 2, 1, 3)) == 3

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_formula_matches_bfs_from_identity(self, n):
        s = StarGraph(n)
        for v in range(1, s.num_nodes):
            perm = perm_unrank(v, n)
            bfs = s.bfs_distance(0, v)
            assert star_distance_to_identity(perm) == bfs
            assert s.distance(v, 0) == bfs
        assert s.distance(0, 0) == 0

    def test_distance_symmetric_pairs(self):
        s = StarGraph(4)
        for u, v in [(0, 5), (3, 17), (10, 23), (7, 7)]:
            assert s.distance(u, v) == s.distance(v, u)
            if u != v:
                assert s.distance(u, v) == s.bfs_distance(u, v)

    def test_distance_bounded_by_diameter(self):
        s = StarGraph(5)
        rngpairs = [(0, 100), (17, 83), (54, 54), (119, 1)]
        for u, v in rngpairs:
            assert 0 <= s.distance(u, v) <= s.diameter


class TestStarRouting:
    def test_greedy_move_identity_returns_zero(self):
        assert greedy_move_to_identity((0, 1, 2)) == 0

    def test_route_next_fixed_point(self):
        s = StarGraph(4)
        assert s.route_next(7, 7) == 7

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_greedy_path_is_minimal(self, n):
        s = StarGraph(n)
        pairs = [(0, s.num_nodes - 1), (1, s.num_nodes // 2), (5 % s.num_nodes, 0)]
        for u, v in pairs:
            path = s.greedy_path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(path) - 1 == s.distance(u, v)
            # consecutive nodes adjacent
            for a, b in zip(path, path[1:]):
                assert b in s.neighbors(a)

    @given(st.integers(min_value=0, max_value=119), st.integers(min_value=0, max_value=119))
    @settings(max_examples=60, deadline=None)
    def test_greedy_path_minimal_property(self, u, v):
        s = StarGraph(5)
        path = s.greedy_path(u, v)
        assert len(path) - 1 == s.distance(u, v)


class TestStarStages:
    def test_stage_subgraph_key(self):
        s = StarGraph(4)
        v = s.node_id((1, 0, 2, 3))
        assert s.stage_subgraph_key(v, 0) == ()
        assert s.stage_subgraph_key(v, 1) == (3,)
        assert s.stage_subgraph_key(v, 2) == (2, 3)

    def test_stage_subgraphs_partition(self):
        s = StarGraph(4)
        keys = {}
        for v in range(s.num_nodes):
            keys.setdefault(s.stage_subgraph_key(v, 1), []).append(v)
        # n subgraphs of size (n-1)!
        assert len(keys) == 4
        assert all(len(nodes) == 6 for nodes in keys.values())

    def test_critical_point_paper_example(self):
        # Paper: in the 4-star, BACD is the critical point of DACB at stage 1
        # (symbols A,B,C,D -> 0,1,2,3).
        s = StarGraph(4)
        dacb = s.node_id((3, 0, 2, 1))
        bacd = s.node_id((1, 0, 2, 3))
        assert s.critical_point(dacb, 1) == bacd
        assert s.critical_point(bacd, 1) == dacb

    def test_critical_point_changes_subgraph(self):
        s = StarGraph(5)
        for v in (0, 13, 40, 77):
            for i in (1, 2):
                w = s.critical_point(v, i)
                assert w in s.neighbors(v)
                assert s.stage_subgraph_key(w, i) != s.stage_subgraph_key(v, i)
                # but stays within the same (i-1)-th stage subgraph
                if i > 1:
                    assert s.stage_subgraph_key(w, i - 1) == s.stage_subgraph_key(v, i - 1)

    def test_critical_point_bad_stage(self):
        s = StarGraph(4)
        with pytest.raises(ValueError):
            s.critical_point(0, 0)
        with pytest.raises(ValueError):
            s.critical_point(0, 4)
