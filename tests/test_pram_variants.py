"""PRAM variants: CRCW write-policy resolution edge cases.

`resolve_writes` is the single point where concurrent writes become one
stored value, so every policy's tie-breaking is pinned here both at the
function level (unordered writer lists, strict vs permissive COMMON)
and through the machine (full CRCW runs are deterministic across
repeats and independent of request arrival order).
"""

import pytest

from repro.pram.machine import Read, Write, run_program
from repro.pram.variants import (
    COMBINE_OPS,
    AccessMode,
    ConcurrentAccessError,
    WritePolicy,
    resolve_writes,
)


class TestResolveWrites:
    def test_single_writer_bypasses_every_policy(self):
        for policy in WritePolicy:
            assert resolve_writes([(3, "v")], policy) == "v"

    def test_needs_at_least_one_writer(self):
        with pytest.raises(ValueError):
            resolve_writes([], WritePolicy.COMMON)

    # -- COMMON ----------------------------------------------------------
    def test_common_agreeing_values(self):
        assert resolve_writes([(0, 7), (5, 7), (2, 7)], WritePolicy.COMMON) == 7

    def test_common_divergence_raises_strict(self):
        with pytest.raises(ConcurrentAccessError):
            resolve_writes([(0, 1), (1, 2)], WritePolicy.COMMON)

    def test_common_divergence_permissive_resolves_lowest_pid(self):
        """strict=False is the race-analysis pre-run path: lowest pid
        wins so the trace keeps going past the conflict being reported."""
        got = resolve_writes(
            [(4, "d"), (1, "b"), (7, "g")], WritePolicy.COMMON, strict=False
        )
        assert got == "b"

    def test_common_distinct_objects_equal_values_agree(self):
        # value agreement is by equality, not identity
        assert resolve_writes(
            [(0, 1.0), (1, 1)], WritePolicy.COMMON
        ) == 1.0

    # -- ARBITRARY / PRIORITY -------------------------------------------
    @pytest.mark.parametrize(
        "policy", [WritePolicy.ARBITRARY, WritePolicy.PRIORITY]
    )
    def test_lowest_pid_wins_regardless_of_list_order(self, policy):
        writers = [(9, "i"), (0, "a"), (4, "e")]
        assert resolve_writes(writers, policy) == "a"
        assert resolve_writes(list(reversed(writers)), policy) == "a"

    # -- COMBINE ---------------------------------------------------------
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            ("sum", [3, 1, 2], 6),
            ("min", [3, 1, 2], 1),
            ("max", [3, 1, 2], 3),
            ("or", [0, 0, 1], 1),
            ("or", [0, 0, 0], 0),
            ("and", [1, 1, 1], 1),
            ("and", [1, 0, 1], 0),
        ],
    )
    def test_combine_ops(self, op, values, expected):
        writers = [(pid, v) for pid, v in enumerate(values)]
        assert resolve_writes(writers, WritePolicy.COMBINE, op) == expected

    def test_combine_is_order_insensitive(self):
        writers = [(2, 5), (0, 1), (1, 3)]
        fwd = resolve_writes(writers, WritePolicy.COMBINE, "sum")
        rev = resolve_writes(list(reversed(writers)), WritePolicy.COMBINE, "sum")
        assert fwd == rev == 9

    def test_unknown_combine_op_raises(self):
        with pytest.raises(ValueError):
            resolve_writes([(0, 1), (1, 2)], WritePolicy.COMBINE, "median")

    def test_combine_ops_registry_matches_policies_doc(self):
        assert set(COMBINE_OPS) == {"sum", "min", "max", "or", "and"}


# ---------------------------------------------------------------------------
# policies through the machine
# ---------------------------------------------------------------------------

def _all_write_pid(pid: int, nprocs: int):
    yield Write(0, pid + 10)


def _all_write_same(pid: int, nprocs: int):
    yield Write(0, 99)


class TestMachinePolicies:
    def _run(self, program, policy, *, combine_op="sum", n=8):
        return run_program(
            program,
            n,
            4,
            mode=AccessMode.CRCW,
            write_policy=policy,
            combine_op=combine_op,
        )

    def test_priority_machine_lowest_pid_wins(self):
        pram = self._run(_all_write_pid, WritePolicy.PRIORITY)
        assert pram.memory.read(0) == 10

    def test_arbitrary_machine_is_deterministic(self):
        runs = [
            self._run(_all_write_pid, WritePolicy.ARBITRARY).memory.read(0)
            for _ in range(3)
        ]
        assert runs == [10, 10, 10]

    def test_combine_machine_sums_all_writers(self):
        pram = self._run(_all_write_pid, WritePolicy.COMBINE)
        assert pram.memory.read(0) == sum(range(10, 18))

    def test_combine_machine_max(self):
        pram = self._run(
            _all_write_pid, WritePolicy.COMBINE, combine_op="max"
        )
        assert pram.memory.read(0) == 17

    def test_common_machine_accepts_agreement(self):
        pram = self._run(_all_write_same, WritePolicy.COMMON)
        assert pram.memory.read(0) == 99

    def test_common_machine_rejects_divergence(self):
        with pytest.raises(ConcurrentAccessError):
            self._run(_all_write_pid, WritePolicy.COMMON)

    def test_repeated_runs_identical_traces(self):
        def program(pid, nprocs):
            v = yield Read(pid % 2)
            yield Write(0, (v or 0) + 1)

        def snap():
            pram = run_program(
                program,
                6,
                4,
                mode=AccessMode.CRCW,
                write_policy=WritePolicy.COMBINE,
                init={0: 5, 1: 5},
            )
            return (
                pram.memory.read(0),
                [
                    [(w.pid, w.addr, w.value) for w in s.writes]
                    for s in pram.trace.steps
                ],
            )

        assert snap() == snap()
