"""Tests for the Karlin–Upfal hash family and load bounds (§2.1, §3.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    HashFamily,
    IdealRandomHash,
    PolynomialHash,
    bucket_loads,
    collection_load,
    corollary31_reference,
    corollary32_reference,
    degree_for_diameter,
    empirical_overflow_rate,
    lemma22_bound,
    max_load,
)
from repro.util.primes import is_prime


class TestPolynomialHash:
    def test_range(self):
        h = PolynomialHash([3, 5, 7], p=101, n_modules=10)
        for x in range(50):
            assert 0 <= h(x) < 10

    def test_map_matches_scalar(self):
        h = PolynomialHash([3, 5, 7, 11], p=1009, n_modules=64)
        xs = np.arange(200)
        vec = h.map(xs)
        assert all(vec[i] == h(i) for i in range(200))

    def test_map_large_p_fallback(self):
        # P above the int64-safe limit: exact Python-int path.
        p = 2**31 + 11  # prime
        assert is_prime(p)
        h = PolynomialHash([123456789, 987654321], p=p, n_modules=100)
        xs = [0, 1, 2, p - 1]
        assert list(h.map(xs)) == [h(x) for x in xs]

    def test_constant_polynomial(self):
        h = PolynomialHash([42], p=101, n_modules=10)
        assert all(h(x) == 42 % 10 for x in range(20))

    def test_description_bits_order_L_log_M(self):
        # S = L, P ≈ M: bits = S * ceil(log2 P) = O(L log M).
        family = HashFamily(address_space=2**16, n_modules=256, degree_param=8)
        h = family.sample(seed=0)
        assert h.description_bits() == 8 * 17  # next_prime(65536) needs 17 bits

    def test_rejects_empty_coeffs(self):
        with pytest.raises(ValueError):
            PolynomialHash([], p=7, n_modules=2)

    def test_rejects_bad_modules(self):
        with pytest.raises(ValueError):
            PolynomialHash([1], p=7, n_modules=0)


class TestHashFamily:
    def test_prime_at_least_M(self):
        family = HashFamily(address_space=1000, n_modules=16, degree_param=4)
        assert family.p >= 1000
        assert is_prime(family.p)

    def test_sample_is_seeded(self):
        family = HashFamily(1000, 16, 4)
        h1 = family.sample(seed=3)
        h2 = family.sample(seed=3)
        assert h1.coeffs == h2.coeffs
        h3 = family.sample(seed=4)
        assert h1.coeffs != h3.coeffs

    def test_validation(self):
        with pytest.raises(ValueError):
            HashFamily(0, 4, 2)
        with pytest.raises(ValueError):
            HashFamily(10, 0, 2)
        with pytest.raises(ValueError):
            HashFamily(10, 4, 0)

    def test_degree_for_diameter(self):
        assert degree_for_diameter(6) == 6
        assert degree_for_diameter(6, c=1.5) == 9
        assert degree_for_diameter(0) == 1

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_hash_stays_in_range(self, x):
        family = HashFamily(10**6, 37, 5)
        h = family.sample(seed=1)
        assert 0 <= h(x) < 37


class TestLoads:
    def test_bucket_loads_sum(self):
        family = HashFamily(4096, 64, 4)
        h = family.sample(seed=0)
        loads = bucket_loads(h, np.arange(512))
        assert loads.sum() == 512
        assert len(loads) == 64

    def test_max_load_consistent(self):
        family = HashFamily(4096, 64, 4)
        h = family.sample(seed=0)
        assert max_load(h, np.arange(512)) == bucket_loads(h, np.arange(512)).max()

    def test_max_load_empty(self):
        family = HashFamily(16, 4, 2)
        h = family.sample(seed=0)
        assert max_load(h, []) == 0

    def test_loads_roughly_balanced(self):
        # With S >= 2 the family is pairwise independent: mean load N/modules.
        family = HashFamily(2**16, 64, 6)
        h = family.sample(seed=5)
        loads = bucket_loads(h, np.arange(4096))
        assert loads.mean() == 4096 / 64
        assert loads.max() < 4 * loads.mean()

    def test_collection_load(self):
        family = HashFamily(1024, 32, 4)
        h = family.sample(seed=2)
        total = sum(
            collection_load(h, np.arange(256), [b]) for b in range(32)
        )
        assert total == 256


class TestLemma22:
    def test_trivial_regimes(self):
        assert lemma22_bound(100, 10, delta=5, gamma=3, p=101) == 1.0
        assert lemma22_bound(10, 10, delta=2, gamma=20, p=101) == 0.0

    def test_bound_decreases_in_gamma(self):
        vals = [
            lemma22_bound(256, 256, delta=4, gamma=g, p=257) for g in (4, 8, 16, 32)
        ]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_bound_dominates_empirical(self):
        # Measured overflow frequency must not exceed the theory bound.
        family = HashFamily(address_space=509, n_modules=32, degree_param=4)
        s_size, gamma = 128, 24
        bound = lemma22_bound(s_size, 32, delta=4, gamma=gamma, p=family.p)
        emp = empirical_overflow_rate(family, s_size, gamma, trials=120, seed=9)
        assert emp <= bound + 0.05

    def test_paper_regime_is_tiny(self):
        # γ = cℓ with S=cℓ coefficients: the probability the routing
        # problem is NOT a cℓ-relation is negligible (the rehash rate).
        # star graph n=7: N=5040, diameter 9, S=γ=2*9.
        b = lemma22_bound(5040, 5040, delta=18, gamma=18 * 2, p=5051)
        assert b < 1e-6


class TestReferences:
    def test_corollary31_grows_slowly(self):
        assert corollary31_reference(2**10) < corollary31_reference(2**20)
        assert corollary31_reference(2**20) < 6  # log N / log log N is tiny

    def test_corollary32_reference(self):
        assert corollary32_reference(64, beta=2.0) == pytest.approx(
            32 + 64**0.75
        )

    def test_empirical_max_load_matches_corollary31_shape(self):
        # N items into N buckets: max load should be near log N / log log N,
        # certainly below, say, 6x that reference.
        n = 4096
        family = HashFamily(n * 4, n, degree_param=8)
        h = family.sample(seed=11)
        ml = max_load(h, np.arange(n))
        assert ml <= 6 * corollary31_reference(n)
        assert ml >= 2  # a collision exists w.h.p.

    def test_corollary32_shape(self):
        # n² items into βn buckets: max close to n/β.
        n, beta = 64, 2.0
        family = HashFamily(n * n * 4, int(beta * n), degree_param=8)
        h = family.sample(seed=12)
        ml = max_load(h, np.arange(n * n))
        assert ml <= corollary32_reference(n, beta) * 1.5

    def test_ideal_random_hash(self):
        ideal = IdealRandomHash(1000, 10, seed=1)
        assert all(0 <= ideal(x) < 10 for x in range(100))
        assert ideal.map(np.arange(10)).shape == (10,)
        assert ideal.description_bits() > PolynomialHash(
            [1, 2], p=1009, n_modules=10
        ).description_bits()
