"""Tests for the paper's routing algorithms (Algorithms 2.1-2.3, §3.4)."""

import numpy as np
import pytest

from repro.routing import (
    GreedyMeshRouter,
    GreedyRouter,
    LeveledRouter,
    MeshRouter,
    ShuffleRouter,
    StarRouter,
    ValiantHypercubeRouter,
    adversarial_star_permutation,
    default_slice_rows,
    random_linear_instance,
    route_linear,
    transpose_permutation,
    valiant_shuffle_route,
)
from repro.topology import (
    DAryButterflyLeveled,
    DWayShuffle,
    Hypercube,
    Mesh2D,
    ShuffleLeveled,
    StarGraph,
    StarLogicalLeveled,
)


class TestLeveledRouter:
    @pytest.mark.parametrize("mode", ["coin", "node"])
    def test_permutation_routing_delivers(self, mode):
        net = DAryButterflyLeveled(3, 3)  # 27 rows
        router = LeveledRouter(net, intermediate=mode, seed=1)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.delivered == 27
        # every packet crosses exactly 2L links
        assert all(h == 2 * net.num_levels for h in stats.hops)

    def test_time_linear_in_levels(self):
        # Theorem 2.1 shape check: time/(2L) stays bounded as L grows.
        ratios = []
        for d, L in [(2, 4), (2, 6), (2, 8)]:
            net = DAryButterflyLeveled(d, L)
            router = LeveledRouter(net, seed=2)
            stats = router.route_random_permutation()
            assert stats.completed
            ratios.append(stats.steps / (2 * L))
        assert max(ratios) < 6.0  # Õ(ℓ) with small constant

    def test_star_logical_network_routing(self):
        net = StarLogicalLeveled(4)
        router = LeveledRouter(net, intermediate="node", seed=3)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.delivered == 24

    def test_shuffle_leveled_routing(self):
        net = ShuffleLeveled(3, 3)
        router = LeveledRouter(net, intermediate="coin", seed=4)
        stats = router.route_random_permutation()
        assert stats.completed

    def test_h_relation_routing(self):
        # Theorem 2.4: cℓ packets per node still finishes.
        net = DAryButterflyLeveled(2, 4)
        router = LeveledRouter(net, seed=5)
        n = net.column_size
        rng = np.random.default_rng(0)
        h = net.num_levels
        sources = np.repeat(np.arange(n), h)
        dests = np.concatenate([rng.permutation(n) for _ in range(h)])
        stats = router.route_h_relation(sources, dests)
        assert stats.completed
        assert stats.delivered == h * n

    def test_bad_permutation_rejected(self):
        net = DAryButterflyLeveled(2, 2)
        router = LeveledRouter(net, seed=0)
        with pytest.raises(ValueError):
            router.route_permutation([0, 0, 1, 2])

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            LeveledRouter(DAryButterflyLeveled(2, 2), intermediate="magic")

    def test_seeded_runs_reproduce(self):
        net = DAryButterflyLeveled(2, 5)
        s1 = LeveledRouter(net, seed=11).route_random_permutation()
        s2 = LeveledRouter(net, seed=11).route_random_permutation()
        assert s1.steps == s2.steps
        assert s1.max_queue == s2.max_queue


class TestStarRouter:
    def test_permutation_routing_delivers(self):
        star = StarGraph(4)
        router = StarRouter(star, seed=1)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.delivered == 24

    def test_time_order_of_diameter(self):
        # Theorem 2.2: Õ(n) — check time within a small multiple of diameter.
        star = StarGraph(5)
        router = StarRouter(star, seed=2)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.steps <= 8 * star.diameter

    def test_n_relation(self):
        star = StarGraph(4)
        router = StarRouter(star, seed=3)
        stats = router.route_n_relation()
        assert stats.completed

    def test_deterministic_variant(self):
        star = StarGraph(4)
        router = StarRouter(star, seed=4, randomized=False)
        stats = router.route_random_permutation()
        assert stats.completed
        # hop counts are exact star distances for the greedy variant
        assert stats.max_hops <= star.diameter

    def test_adversarial_permutation_is_valid(self):
        star = StarGraph(5)
        perm = adversarial_star_permutation(star)
        assert sorted(perm.tolist()) == list(range(star.num_nodes))

    def test_bad_permutation_rejected(self):
        star = StarGraph(3)
        with pytest.raises(ValueError):
            StarRouter(star, seed=0).route_permutation([0, 1])


class TestShuffleRouter:
    def test_permutation_routing_delivers(self):
        sh = DWayShuffle(3, 3)
        router = ShuffleRouter(sh, seed=1)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.delivered == 27
        assert all(h == 2 * sh.n for h in stats.hops)

    def test_n_way_shuffle(self):
        sh = DWayShuffle.n_way(3)
        router = ShuffleRouter(sh, seed=2)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.steps <= 10 * sh.n

    def test_n_relation(self):
        sh = DWayShuffle(3, 3)
        stats = ShuffleRouter(sh, seed=3).route_n_relation()
        assert stats.completed

    def test_deterministic_single_pass(self):
        sh = DWayShuffle(3, 3)
        router = ShuffleRouter(sh, seed=4, randomized=False)
        stats = router.route_random_permutation()
        assert stats.completed
        assert all(h == sh.n for h in stats.hops)

    def test_bad_permutation_rejected(self):
        sh = DWayShuffle(2, 2)
        with pytest.raises(ValueError):
            ShuffleRouter(sh, seed=0).route_permutation([0, 1, 2, 0])


class TestMeshRouter:
    def test_permutation_routing_delivers(self):
        mesh = Mesh2D.square(8)
        router = MeshRouter(mesh, seed=1)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.delivered == 64

    def test_time_close_to_2n(self):
        # Theorem 3.1 shape: 2n + o(n).
        n = 16
        mesh = Mesh2D.square(n)
        router = MeshRouter(mesh, seed=2)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.steps <= 3.5 * n

    def test_fifo_discipline_also_works(self):
        mesh = Mesh2D.square(8)
        router = MeshRouter(mesh, seed=3, discipline="fifo")
        stats = router.route_random_permutation()
        assert stats.completed

    def test_bad_discipline_rejected(self):
        with pytest.raises(ValueError):
            MeshRouter(Mesh2D.square(4), discipline="lifo")

    def test_node_capacity_variant_completes(self):
        mesh = Mesh2D.square(8)
        router = MeshRouter(mesh, seed=4, node_capacity=8)
        stats = router.route_random_permutation()
        assert stats.completed

    def test_slice_rows_default(self):
        assert default_slice_rows(2) == 1
        assert default_slice_rows(16) == 4
        assert default_slice_rows(64) == 11  # 64/log2(64) rounded

    def test_explicit_slice_rows(self):
        mesh = Mesh2D.square(8)
        router = MeshRouter(mesh, seed=5, slice_rows=8)
        stats = router.route_random_permutation()
        assert stats.completed
        with pytest.raises(ValueError):
            MeshRouter(mesh, slice_rows=0)

    def test_many_one_pattern_completes(self):
        # many-one routing (§2.2.1): all packets to one node, combining off.
        mesh = Mesh2D.square(6)
        router = MeshRouter(mesh, seed=6)
        sources = np.arange(36)
        dests = np.zeros(36, dtype=int)
        stats = router.route(sources, dests, max_steps=5000)
        assert stats.completed

    def test_greedy_baseline(self):
        mesh = Mesh2D.square(6)
        router = GreedyMeshRouter(mesh)
        stats = router.route(np.arange(36), np.random.default_rng(0).permutation(36))
        assert stats.completed


class TestLinearRouting:
    def test_single_line_routing(self):
        stats = route_linear(10, [0, 9], [9, 0])
        assert stats.completed
        assert stats.steps == 9

    def test_random_instance_bound(self):
        # §3.4.1: n' random packets finish in about n' + o(n) steps.
        n, total = 40, 40
        origins, dests = random_linear_instance(n, total, seed=7)
        stats = route_linear(n, origins, dests)
        assert stats.completed
        assert stats.steps <= 2 * n

    def test_fifo_vs_furthest_first(self):
        n, total = 30, 60
        origins, dests = random_linear_instance(n, total, seed=8)
        ff = route_linear(n, origins, dests, discipline="furthest_first")
        fifo = route_linear(n, origins, dests, discipline="fifo")
        assert ff.completed and fifo.completed

    def test_validates_nodes(self):
        with pytest.raises(ValueError):
            route_linear(5, [6], [0])

    def test_bad_discipline(self):
        with pytest.raises(ValueError):
            route_linear(5, [0], [1], discipline="magic")


class TestValiantBaselines:
    def test_hypercube_random_permutation(self):
        cube = Hypercube(5)
        router = ValiantHypercubeRouter(cube, seed=1)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.steps <= 8 * cube.n

    def test_transpose_perm_valid(self):
        cube = Hypercube(6)
        perm = transpose_permutation(cube)
        assert sorted(perm.tolist()) == list(range(64))

    def test_transpose_hurts_deterministic_routing(self):
        # The classic Valiant motivation: deterministic e-cube on the
        # transpose needs far longer than the randomized router.
        cube = Hypercube(6)
        perm = transpose_permutation(cube)
        det = GreedyRouter(cube).route(np.arange(64), perm)
        rnd = ValiantHypercubeRouter(cube, seed=2).route(np.arange(64), perm)
        assert det.completed and rnd.completed
        assert det.steps > cube.n  # congestion delay visible
        assert rnd.steps <= det.steps * 2  # randomization competitive

    def test_serialized_shuffle_route_completes(self):
        sh = DWayShuffle(3, 3)
        rng = np.random.default_rng(3)
        stats = valiant_shuffle_route(
            sh, np.arange(27), rng.permutation(27), seed=4
        )
        assert stats.completed

    def test_serialized_slower_than_parallel(self):
        sh = DWayShuffle.n_way(3)
        rng = np.random.default_rng(5)
        perm = rng.permutation(sh.num_nodes)
        ser = valiant_shuffle_route(sh, np.arange(sh.num_nodes), perm, seed=6)
        par = ShuffleRouter(sh, seed=6).route(np.arange(sh.num_nodes), perm)
        assert ser.completed and par.completed
        assert ser.steps >= par.steps


class TestGreedyRouter:
    def test_routes_on_star(self):
        star = StarGraph(4)
        router = GreedyRouter(star)
        rng = np.random.default_rng(9)
        stats = router.route(np.arange(24), rng.permutation(24))
        assert stats.completed

    def test_stall_detection(self):
        class Broken(StarGraph):
            def route_next(self, cur, dest):
                return cur  # never advances

        router = GreedyRouter(Broken(3))
        with pytest.raises(RuntimeError):
            router.route([0], [5])
