"""Tests for PRAM emulation on leveled networks (Theorems 2.5-2.6)."""

import numpy as np
import pytest

from repro.emulation import LeveledEmulator
from repro.pram import (
    AccessMode,
    MemoryTrace,
    ReadRequest,
    StepTrace,
    WritePolicy,
    WriteRequest,
    hotspot_step,
    permutation_step,
    random_trace,
)
from repro.topology import DAryButterflyLeveled, ShuffleLeveled, StarLogicalLeveled


def _net():
    return DAryButterflyLeveled(3, 3)  # 27 processors/modules


class TestLeveledEmulatorBasics:
    def test_single_read_roundtrip(self):
        emu = LeveledEmulator(_net(), address_space=100, seed=1)
        emu.memory.write(42, "payload")
        step = StepTrace(reads=[ReadRequest(0, 42)])
        cost = emu.emulate_step(step)
        assert cost.total_steps > 0
        assert cost.request_steps >= 2 * 3  # at least one full traversal

    def test_write_then_read(self):
        emu = LeveledEmulator(_net(), address_space=50, seed=2)
        emu.emulate_step(StepTrace(writes=[WriteRequest(3, 7, "hello")]))
        assert emu.memory.read(7) == "hello"
        cost = emu.emulate_step(StepTrace(reads=[ReadRequest(5, 7)]))
        assert cost.reply_steps > 0

    def test_write_only_step_has_no_reply_phase(self):
        emu = LeveledEmulator(_net(), address_space=50, seed=3)
        cost = emu.emulate_step(StepTrace(writes=[WriteRequest(0, 1, 9)]))
        assert cost.reply_steps == 0

    def test_permutation_step_full_machine(self):
        net = _net()
        emu = LeveledEmulator(net, address_space=256, seed=4)
        step = permutation_step(net.column_size, 256, seed=5)
        cost = emu.emulate_step(step)
        assert cost.requests == net.column_size
        # Theorem 2.5/2.6 shape: time a small multiple of the diameter.
        assert cost.total_steps <= 10 * emu.scale

    def test_reads_see_pre_step_memory(self):
        emu = LeveledEmulator(_net(), address_space=10, seed=6)
        emu.memory.write(0, "old")
        step = StepTrace(
            reads=[ReadRequest(1, 0)], writes=[WriteRequest(2, 0, "new")]
        )
        emu.emulate_step(step)
        assert emu.memory.read(0) == "new"
        # the read reply carried "old": validated internally by count; check
        # semantics via a second read
        emu2 = LeveledEmulator(_net(), address_space=10, seed=6)
        emu2.memory.write(0, "old")
        # identical step; values map in emulate_step read pre-state
        # (behavioral check: no exception and memory updated)
        emu2.emulate_step(step)
        assert emu2.memory.read(0) == "new"

    def test_erew_mode_rejects_concurrent(self):
        emu = LeveledEmulator(_net(), address_space=64, mode="erew", seed=7)
        step = StepTrace(reads=[ReadRequest(0, 5), ReadRequest(1, 5)])
        with pytest.raises(ValueError):
            emu.emulate_step(step)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            LeveledEmulator(_net(), 10, mode="qrqw")

    def test_processor_bound_checked(self):
        emu = LeveledEmulator(_net(), address_space=64, seed=8)
        step = StepTrace(reads=[ReadRequest(999, 5)])
        with pytest.raises(ValueError):
            emu.emulate_step(step)


class TestCombining:
    def test_hotspot_concurrent_reads_combine(self):
        net = _net()
        emu = LeveledEmulator(net, address_space=128, mode="crcw", seed=9)
        emu.memory.write(17, "hot")
        step = StepTrace(reads=[ReadRequest(pid, 17) for pid in range(net.column_size)])
        cost = emu.emulate_step(step)
        assert cost.combines > 0
        # all 27 readers answered (validated internally), in Õ(diameter)
        assert cost.total_steps <= 12 * emu.scale

    def test_hotspot_not_slower_than_linear(self):
        # Without combining, N concurrent reads of one cell would need
        # Ω(N) steps at the module's link; combining keeps it near the
        # diameter (the whole point of Theorem 2.6).
        net = DAryButterflyLeveled(2, 5)  # 32 processors
        emu = LeveledEmulator(net, address_space=64, mode="crcw", seed=10)
        step = StepTrace(reads=[ReadRequest(pid, 3) for pid in range(32)])
        cost = emu.emulate_step(step)
        assert cost.total_steps < 32  # far below the N lower bound sans combining

    def test_concurrent_writes_resolved_by_policy(self):
        net = _net()
        emu = LeveledEmulator(
            net, address_space=64, mode="crcw",
            write_policy=WritePolicy.COMBINE, combine_op="sum", seed=11,
        )
        step = StepTrace(writes=[WriteRequest(pid, 9, 1) for pid in range(10)])
        emu.emulate_step(step)
        assert emu.memory.read(9) == 10

    def test_priority_write_policy(self):
        net = _net()
        emu = LeveledEmulator(
            net, address_space=64, mode="crcw",
            write_policy=WritePolicy.PRIORITY, seed=12,
        )
        step = StepTrace(
            writes=[WriteRequest(5, 9, "five"), WriteRequest(2, 9, "two")]
        )
        emu.emulate_step(step)
        assert emu.memory.read(9) == "two"


class TestTraceEmulation:
    def test_random_trace_on_butterfly(self):
        net = _net()
        emu = LeveledEmulator(net, address_space=512, seed=13)
        trace = random_trace(net.column_size, 512, 4, seed=14)
        report = emu.emulate_trace(trace)
        assert report.pram_steps == 4
        assert report.total_network_steps > 0
        assert max(report.normalized_step_times()) <= 12

    def test_star_logical_emulation(self):
        net = StarLogicalLeveled(4)  # 24 processors
        emu = LeveledEmulator(net, address_space=128, intermediate="node", seed=15)
        step = permutation_step(net.column_size, 128, seed=16)
        cost = emu.emulate_step(step)
        assert cost.total_steps <= 12 * emu.scale

    def test_shuffle_emulation(self):
        net = ShuffleLeveled(3, 3)
        emu = LeveledEmulator(net, address_space=128, seed=17)
        step = permutation_step(net.column_size, 128, seed=18)
        cost = emu.emulate_step(step)
        assert cost.total_steps <= 12 * emu.scale

    def test_empty_step_costs_nothing(self):
        emu = LeveledEmulator(_net(), address_space=16, seed=19)
        report = emu.emulate_trace(MemoryTrace(steps=[StepTrace()]))
        assert report.total_network_steps == 0

    def test_report_aggregates(self):
        net = _net()
        emu = LeveledEmulator(net, address_space=256, seed=20)
        trace = random_trace(net.column_size, 256, 3, seed=21)
        report = emu.emulate_trace(trace)
        assert report.mean_step_time > 0
        assert report.max_step_time >= report.mean_step_time
        assert report.step_time_summary().n == 3


class TestRehashing:
    def test_forced_rehash_recovers(self):
        # An absurdly tight allotment forces rehashes; the emulator must
        # still terminate (via the generous fallback) and count them.
        net = _net()
        emu = LeveledEmulator(
            net, address_space=128, rehash_factor=0.1, max_rehashes=2, seed=22
        )
        step = permutation_step(net.column_size, 128, seed=23)
        cost = emu.emulate_step(step)
        assert cost.rehashes == 2
        assert emu.rehash_count == 2

    def test_normal_runs_do_not_rehash(self):
        net = _net()
        emu = LeveledEmulator(net, address_space=128, seed=24)
        step = permutation_step(net.column_size, 128, seed=25)
        cost = emu.emulate_step(step)
        assert cost.rehashes == 0

    def test_rehash_changes_function(self):
        emu = LeveledEmulator(_net(), address_space=128, seed=26)
        before = list(emu.hash.coeffs)
        emu.rehash()
        assert emu.hash.coeffs != before
        assert emu.rehash_count == 1
