"""Online traffic subsystem: generators, driver, telemetry.

Pins the three contracts ISSUE 5 calls out:

* **seed stability** — every workload generator is a pure function of
  its seed: same seed, bit-identical request stream;
* **engine independence** — an online run on ``engine="fast"`` matches
  ``engine="reference"`` epoch for epoch (steps, sojourns, counters);
* **conservation** — admission-queue carry-over under saturation never
  loses or duplicates a request, with either overflow policy;

plus the dispatch-history guarantee: rectangular online epochs stay on
the vectorized batch / constrained-batch engine modes, never silently
the per-event loop.
"""

import numpy as np
import pytest

from repro.emulation import LeveledEmulator, MeshEmulator
from repro.topology import DAryButterflyLeveled, Mesh2D
from repro.traffic import (
    BurstyArrivals,
    DeterministicArrivals,
    HotspotKeys,
    OnlineEmulator,
    PoissonArrivals,
    ScanKeys,
    TrafficReport,
    UniformKeys,
    WorkloadGenerator,
    ZipfKeys,
)

SPACE = 256

ARRIVALS = {
    "deterministic": lambda: DeterministicArrivals(5.5),
    "poisson": lambda: PoissonArrivals(6.0),
    "bursty": lambda: BurstyArrivals(
        9.0, 1.0, p_exit_on=0.3, p_exit_off=0.4
    ),
}

KEYS = {
    "uniform": lambda: UniformKeys(SPACE),
    "zipf": lambda: ZipfKeys(SPACE, exponent=1.2),
    "hotspot": lambda: HotspotKeys(SPACE, hot_addresses=3, hot_fraction=0.7),
    "scan": lambda: ScanKeys(SPACE, scan_length=4),
}


def _flatten(stream):
    return [r for epoch in stream for r in epoch]


class TestGeneratorSeedStability:
    @pytest.mark.parametrize("arrival_name", sorted(ARRIVALS))
    @pytest.mark.parametrize("key_name", sorted(KEYS))
    def test_same_seed_identical_stream(self, arrival_name, key_name):
        def build():
            return WorkloadGenerator(
                16,
                arrivals=ARRIVALS[arrival_name](),
                keys=KEYS[key_name](),
                read_fraction=0.75,
                seed=42,
            )

        a = _flatten(build().stream(25))
        b = _flatten(build().stream(25))
        assert a == b  # TrafficRequest is a frozen dataclass: field equality
        assert len(a) > 0

    def test_stream_is_replayable_on_one_generator(self):
        wl = WorkloadGenerator(
            8, arrivals=PoissonArrivals(4.0), keys=UniformKeys(SPACE), seed=3
        )
        assert _flatten(wl.stream(10)) == _flatten(wl.stream(10))

    def test_stream_prefix_stable_across_horizons(self):
        """The first k epochs do not depend on how far the stream runs."""
        wl1 = WorkloadGenerator(
            8, arrivals=DeterministicArrivals(3), keys=UniformKeys(SPACE), seed=5
        )
        wl2 = WorkloadGenerator(
            8, arrivals=DeterministicArrivals(3), keys=UniformKeys(SPACE), seed=5
        )
        assert wl1.stream(30)[:10] == wl2.stream(10)

    def test_different_seeds_differ(self):
        def build(seed):
            return WorkloadGenerator(
                16,
                arrivals=PoissonArrivals(6.0),
                keys=UniformKeys(SPACE),
                seed=seed,
            )

        assert _flatten(build(1).stream(20)) != _flatten(build(2).stream(20))

    def test_rids_unique_and_monotone(self):
        wl = WorkloadGenerator(
            16, arrivals=PoissonArrivals(7.0), keys=ZipfKeys(SPACE), seed=11
        )
        reqs = _flatten(wl.stream(20))
        rids = [r.rid for r in reqs]
        assert rids == list(range(len(reqs)))


class TestArrivalProcesses:
    def test_deterministic_fractional_rate_accumulates(self):
        counts = DeterministicArrivals(1.5).counts(10, np.random.default_rng(0))
        assert counts.sum() == 15
        assert set(counts.tolist()) == {1, 2}

    def test_deterministic_draws_no_randomness(self):
        rng = np.random.default_rng(0)
        DeterministicArrivals(2.0).counts(5, rng)
        assert rng.integers(100) == np.random.default_rng(0).integers(100)

    def test_poisson_mean(self):
        counts = PoissonArrivals(8.0).counts(2000, np.random.default_rng(1))
        assert abs(counts.mean() - 8.0) < 0.5

    def test_bursty_tracks_stationary_mix(self):
        proc = BurstyArrivals(10.0, 1.0, p_exit_on=0.2, p_exit_off=0.2)
        counts = proc.counts(4000, np.random.default_rng(2))
        assert abs(counts.mean() - proc.mean_rate()) < 0.5

    def test_bursty_actually_bursts(self):
        proc = BurstyArrivals(20.0, 0.0, p_exit_on=0.1, p_exit_off=0.1)
        counts = proc.counts(400, np.random.default_rng(3))
        assert (counts == 0).any() and (counts >= 10).any()


class TestKeyDistributions:
    @pytest.mark.parametrize("key_name", sorted(KEYS))
    def test_draws_in_range(self, key_name):
        draws = KEYS[key_name]().draw(500, np.random.default_rng(4))
        assert draws.shape == (500,)
        assert draws.min() >= 0 and draws.max() < SPACE

    def test_zipf_rank_order(self):
        draws = ZipfKeys(SPACE, exponent=1.3).draw(
            20000, np.random.default_rng(5)
        )
        counts = np.bincount(draws, minlength=SPACE)
        assert counts[0] > counts[10] > counts[100]

    def test_hotspot_fraction(self):
        keys = HotspotKeys(SPACE, hot_addresses=2, hot_fraction=0.8)
        draws = keys.draw(20000, np.random.default_rng(6))
        hot_share = (draws < 2).mean()
        assert 0.75 < hot_share < 0.85

    def test_scan_runs_are_consecutive(self):
        draws = ScanKeys(SPACE, scan_length=8).draw(
            64, np.random.default_rng(7)
        )
        runs = draws.reshape(8, 8)
        assert ((np.diff(runs, axis=1) % SPACE) == 1).all()


def _mesh_driver(engine, *, mode="crcw", capacity=None, flow="none", seed=9):
    mesh = Mesh2D.square(6)
    n = mesh.num_nodes
    em = MeshEmulator(
        mesh,
        4 * n,
        mode=mode,
        seed=5,
        engine=engine,
        node_capacity=capacity,
        flow_control=flow,
    )
    wl = WorkloadGenerator(
        n,
        arrivals=PoissonArrivals(0.8 * n),
        keys=HotspotKeys(4 * n, hot_addresses=3, hot_fraction=0.5),
        read_fraction=0.8,
        seed=seed,
    )
    return OnlineEmulator(em, wl)


def _leveled_driver(engine, *, capacity=None, flow="none", seed=9):
    net = DAryButterflyLeveled(2, 5)
    n = net.column_size
    em = LeveledEmulator(
        net,
        4 * n,
        mode="crcw",
        seed=5,
        engine=engine,
        node_capacity=capacity,
        flow_control=flow,
    )
    wl = WorkloadGenerator(
        n,
        arrivals=BurstyArrivals(1.5 * n, 0.2 * n, p_exit_on=0.3, p_exit_off=0.3),
        keys=ZipfKeys(4 * n, exponent=1.1),
        read_fraction=0.8,
        seed=seed,
    )
    return OnlineEmulator(em, wl)


EPOCH_FIELDS = (
    "arrivals",
    "dropped",
    "admitted",
    "backlog",
    "steps",
    "request_steps",
    "reply_steps",
    "rehashes",
    "combines",
    "max_queue",
    "credits_stalled",
    "clock",
    "sojourns",
    "sojourns_epochs",
)


def assert_reports_equal(a: TrafficReport, b: TrafficReport):
    """Epoch-for-epoch equality on everything except the engine modes."""
    assert a.num_epochs == b.num_epochs
    for ea, eb in zip(a.epochs, b.epochs):
        for field in EPOCH_FIELDS:
            assert getattr(ea, field) == getattr(eb, field), (
                f"epoch {ea.epoch}: {field}"
            )


class TestEngineDifferential:
    """Same-seed online runs are bit-identical across engines."""

    def test_mesh_crcw_online(self):
        assert_reports_equal(
            _mesh_driver("fast").run(15), _mesh_driver("reference").run(15)
        )

    def test_mesh_credit_online(self):
        fast = _mesh_driver("fast", capacity=3, flow="credit").run(12)
        ref = _mesh_driver("reference", capacity=3, flow="credit").run(12)
        assert_reports_equal(fast, ref)

    def test_leveled_crcw_online(self):
        assert_reports_equal(
            _leveled_driver("fast").run(15),
            _leveled_driver("reference").run(15),
        )

    def test_leveled_credit_online(self):
        fast = _leveled_driver("fast", capacity=2, flow="credit").run(12)
        ref = _leveled_driver("reference", capacity=2, flow="credit").run(12)
        assert_reports_equal(fast, ref)


class TestDispatchHistory:
    """Rectangular online epochs never fall back to the per-event mode."""

    def test_mesh_online_dispatches_batch_every_epoch(self):
        report = _mesh_driver("fast").run(15)
        assert report.num_epochs == 15
        for modes in report.dispatch_history:
            assert modes, "every epoch should have routed at least one run"
            for m in modes:
                assert m == "batch", f"silent fallback to {m!r}"
        assert report.last_run_mode == "batch"

    def test_mesh_credit_online_dispatches_constrained_batch(self):
        report = _mesh_driver("fast", capacity=3, flow="credit").run(12)
        flat = [m for modes in report.dispatch_history for m in modes]
        assert flat, "no routing runs recorded"
        # Requests route under capacity (constrained batch); the CRCW
        # reply fan-out intentionally runs unconstrained (plain batch).
        assert set(flat) <= {"batch-constrained", "batch"}
        assert "batch-constrained" in flat
        assert "event" not in flat and "reference" not in flat

    def test_reference_engine_reports_reference_modes(self):
        report = _mesh_driver("reference").run(6)
        flat = [m for modes in report.dispatch_history for m in modes]
        assert flat and set(flat) == {"reference"}

    def test_run_mode_counts(self):
        report = _mesh_driver("fast").run(6)
        counts = report.run_mode_counts()
        assert set(counts) == {"batch"}
        assert counts["batch"] == sum(len(m) for m in report.dispatch_history)


class TestAdmissionConservation:
    """Carry-over under saturation never loses or duplicates requests."""

    @staticmethod
    def _saturated_driver(overflow="defer", queue_limit=None, exclusive=False):
        mesh = Mesh2D.square(4)
        n = mesh.num_nodes
        em = MeshEmulator(mesh, 4 * n, mode="crcw", seed=5, engine="fast")
        wl = WorkloadGenerator(
            n,
            arrivals=PoissonArrivals(3.0 * n),  # 3x the admit limit
            keys=ZipfKeys(4 * n, exponent=1.2),
            seed=21,
        )
        return OnlineEmulator(
            em,
            wl,
            overflow=overflow,
            queue_limit=queue_limit,
            exclusive=exclusive,
        )

    def test_defer_conserves_requests(self):
        driver = self._saturated_driver()
        report = driver.run(12)
        assert report.total_dropped == 0
        assert (
            report.total_arrivals
            == report.total_delivered + report.final_backlog
        )
        assert report.final_backlog > 0  # genuinely saturated
        assert report.steady_state()["saturated"] == 1.0

    def test_drop_conserves_requests(self):
        driver = self._saturated_driver(overflow="drop", queue_limit=24)
        report = driver.run(12)
        assert report.total_dropped > 0
        assert (
            report.total_arrivals
            == report.total_delivered + report.total_dropped
            + report.final_backlog
        )
        assert report.final_backlog <= 24

    def test_exclusive_conserves_requests(self):
        driver = self._saturated_driver(exclusive=True)
        report = driver.run(12)
        assert (
            report.total_arrivals
            == report.total_delivered + report.final_backlog
        )

    def test_no_request_duplicated_or_lost(self):
        """Served + still-queued rids partition the generated rid set."""
        driver = self._saturated_driver(exclusive=True)
        served: list[int] = []
        original_step = driver.emulator.emulate_step

        def spy(step):
            served.extend(w.value for w in step.writes)
            return original_step(step)

        driver.emulator.emulate_step = spy
        # All-write workload so every admitted rid is observable.
        driver.workload.read_fraction = 0.0
        report = driver.run(12)
        queued = [req.rid for req, _ in driver.queue]
        all_rids = served + queued
        assert len(all_rids) == len(set(all_rids))  # no duplicates
        assert sorted(all_rids) == list(range(report.total_arrivals))

    def test_fifo_order_without_exclusive(self):
        driver = self._saturated_driver()
        admitted: list[int] = []
        original_admit = driver._admit

        def spy():
            batch = original_admit()
            admitted.extend(req.rid for req, _ in batch)
            return batch

        driver._admit = spy
        driver.run(8)
        assert admitted == sorted(admitted)


class TestExclusiveAdmission:
    def test_erew_defaults_to_exclusive(self):
        mesh = Mesh2D.square(4)
        n = mesh.num_nodes
        em = MeshEmulator(mesh, 4 * n, mode="erew", seed=5, engine="fast")
        wl = WorkloadGenerator(
            n,
            arrivals=PoissonArrivals(0.8 * n),
            keys=HotspotKeys(4 * n, hot_addresses=2, hot_fraction=0.6),
            seed=13,
        )
        driver = OnlineEmulator(em, wl)
        assert driver.exclusive is True
        report = driver.run(10)  # would raise inside emulate_step otherwise
        assert report.total_delivered > 0

    def test_crcw_defaults_to_inclusive(self):
        driver = _mesh_driver("fast")
        assert driver.exclusive is False

    def test_exclusive_epochs_have_unique_addresses(self):
        mesh = Mesh2D.square(4)
        n = mesh.num_nodes
        em = MeshEmulator(mesh, 4 * n, mode="erew", seed=5, engine="fast")
        wl = WorkloadGenerator(
            n,
            arrivals=DeterministicArrivals(n),
            keys=HotspotKeys(4 * n, hot_addresses=1, hot_fraction=0.5),
            seed=17,
        )
        driver = OnlineEmulator(em, wl)
        seen: list[list[int]] = []
        original_step = em.emulate_step

        def spy(step):
            seen.append([r.addr for r in step.reads])
            return original_step(step)

        em.emulate_step = spy
        driver.run(8)
        for addrs in seen:
            assert len(addrs) == len(set(addrs))


class TestDriverValidation:
    def test_one_shot(self):
        driver = _mesh_driver("fast")
        driver.run(2)
        with pytest.raises(RuntimeError, match="one-shot"):
            driver.run(2)

    def test_invalid_epochs_do_not_poison_the_driver(self):
        driver = _mesh_driver("fast")
        with pytest.raises(ValueError, match="epochs"):
            driver.run(0)
        assert driver.run(2).num_epochs == 2  # still usable

    def test_queue_limit_rejected_under_defer(self):
        mesh = Mesh2D.square(4)
        em = MeshEmulator(mesh, 64, mode="crcw", seed=1)
        wl = WorkloadGenerator(
            16, arrivals=PoissonArrivals(4), keys=UniformKeys(64), seed=1
        )
        with pytest.raises(ValueError, match="defer"):
            OnlineEmulator(em, wl, queue_limit=10)

    def test_drop_requires_queue_limit(self):
        mesh = Mesh2D.square(4)
        em = MeshEmulator(mesh, 64, mode="crcw", seed=1)
        wl = WorkloadGenerator(
            16, arrivals=PoissonArrivals(4), keys=UniformKeys(64), seed=1
        )
        with pytest.raises(ValueError, match="queue_limit"):
            OnlineEmulator(em, wl, overflow="drop")

    def test_unknown_overflow_policy(self):
        mesh = Mesh2D.square(4)
        em = MeshEmulator(mesh, 64, mode="crcw", seed=1)
        wl = WorkloadGenerator(
            16, arrivals=PoissonArrivals(4), keys=UniformKeys(64), seed=1
        )
        with pytest.raises(ValueError, match="overflow"):
            OnlineEmulator(em, wl, overflow="spill")

    def test_workload_must_fit_emulator(self):
        mesh = Mesh2D.square(4)
        em = MeshEmulator(mesh, 64, mode="crcw", seed=1)
        wl = WorkloadGenerator(
            17, arrivals=PoissonArrivals(4), keys=UniformKeys(64), seed=1
        )
        with pytest.raises(ValueError, match="processors"):
            OnlineEmulator(em, wl)

    def test_workload_keys_must_fit_emulator_memory(self):
        mesh = Mesh2D.square(4)
        em = MeshEmulator(mesh, 32, mode="crcw", seed=1)
        wl = WorkloadGenerator(
            16, arrivals=PoissonArrivals(4), keys=UniformKeys(1024), seed=1
        )
        with pytest.raises(ValueError, match="memory"):
            OnlineEmulator(em, wl)


class TestTelemetry:
    @pytest.fixture(scope="class")
    def report(self):
        return _mesh_driver("fast").run(15)

    def test_percentiles_monotone(self, report):
        p = report.sojourn_percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_series_lengths(self, report):
        n = report.num_epochs
        assert len(report.queue_depth_series()) == n
        assert len(report.credits_stalled_series()) == n
        assert len(report.throughput_series(window=4)) == n
        assert len(report.sojourn_percentile_series(99, window=4)) == n

    def test_windowed_throughput_consistent_with_totals(self, report):
        full = report.throughput_series(window=report.num_epochs)[-1]
        assert full == pytest.approx(
            report.total_delivered / report.total_steps
        )

    def test_clock_is_cumulative_steps(self, report):
        assert report.epochs[-1].clock == report.total_steps

    def test_sojourn_counts_match_deliveries(self, report):
        assert len(report.sojourns) == report.total_delivered

    def test_to_dict_roundtrip_totals(self, report):
        d = report.to_dict()
        assert d["total_arrivals"] == report.total_arrivals
        assert d["total_delivered"] == report.total_delivered
        assert len(d["epochs"]) == report.num_epochs
        import json

        json.dumps(d)  # must be JSON-serializable as committed baselines

    def test_steady_state_keys_stable(self, report):
        ss = report.steady_state()
        assert {
            "offered_per_epoch",
            "served_per_epoch",
            "throughput_per_step",
            "sojourn_p50",
            "sojourn_p95",
            "sojourn_p99",
            "mean_backlog",
            "final_backlog",
            "dropped",
            "credits_stalled",
            "saturated",
        } <= set(ss)

    def test_idle_epochs_recorded(self):
        mesh = Mesh2D.square(4)
        n = mesh.num_nodes
        em = MeshEmulator(mesh, 4 * n, mode="crcw", seed=5, engine="fast")
        wl = WorkloadGenerator(
            n,
            arrivals=BurstyArrivals(
                2.0 * n, 0.0, p_exit_on=0.5, p_exit_off=0.5, start_on=False
            ),
            keys=UniformKeys(4 * n),
            seed=2,
        )
        report = OnlineEmulator(em, wl).run(12)
        idle = [e for e in report.epochs if e.admitted == 0]
        assert idle, "expected at least one idle epoch from the off state"
        for e in idle:
            assert e.steps == 0 and e.run_modes == ()


class TestHarnessIntegration:
    def test_run_online_sweep(self):
        from repro.experiments.harness import run_online_sweep

        def driver_fn(rng, rate_frac):
            mesh = Mesh2D.square(4)
            n = mesh.num_nodes
            em = MeshEmulator(
                mesh, 4 * n, mode="crcw", seed=rng, engine="fast"
            )
            wl = WorkloadGenerator(
                n,
                arrivals=PoissonArrivals(rate_frac * n),
                keys=UniformKeys(4 * n),
                seed=rng,
            )
            return OnlineEmulator(em, wl)

        rows = run_online_sweep(
            driver_fn,
            [{"rate_frac": 0.5}, {"rate_frac": 2.0}],
            epochs=10,
            trials=2,
            seed=0,
        )
        assert len(rows) == 2
        assert len(rows[0].samples["throughput_per_step"]) == 2
        # The overloaded setting saturates; the light one does not.
        assert rows[0].mean("saturated") == 0.0
        assert rows[1].mean("saturated") == 1.0
