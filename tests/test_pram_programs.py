"""Tests for the PRAM program library and synthetic traces."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import (
    ALL_PROGRAM_BUILDERS,
    AccessMode,
    boolean_or,
    broadcast,
    find_max,
    h_relation_step,
    histogram,
    hotspot_step,
    list_ranking,
    local_step_for_mesh,
    matrix_multiply,
    odd_even_sort,
    parallel_sum,
    permutation_step,
    prefix_sum,
    random_trace,
)


class TestPrograms:
    def test_all_builders_run_and_verify(self):
        for name, builder in ALL_PROGRAM_BUILDERS.items():
            spec = builder()
            spec.run()  # verify() raises on failure

    def test_parallel_sum_values(self):
        spec = parallel_sum([2.0] * 32)
        pram = spec.run()
        assert pram.memory.read(0) == 64.0

    def test_parallel_sum_step_count_logarithmic(self):
        spec = parallel_sum(list(range(64)))
        pram = spec.run()
        # 3 PRAM steps per round, log2(64)=6 rounds
        assert pram.steps_executed == 3 * 6

    def test_parallel_sum_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            parallel_sum([1, 2, 3])

    @given(st.lists(st.integers(-100, 100), min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_prefix_sum_property(self, values):
        prefix_sum(values).run()

    def test_broadcast_steps(self):
        spec = broadcast(32, value="hello")
        pram = spec.run()
        assert pram.steps_executed == 2 * 5

    def test_boolean_or_all_zero(self):
        boolean_or([0] * 8).run()

    def test_boolean_or_single_one(self):
        spec = boolean_or([0, 0, 1, 0])
        pram = spec.run()
        assert pram.steps_executed == 2  # O(1) CRCW trick

    def test_find_max_with_duplicates(self):
        find_max([5, 9, 9, 1]).run()

    def test_find_max_negative(self):
        find_max([-5, -2, -9]).run()

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_find_max_property(self, values):
        find_max(values).run()

    def test_list_ranking_chain(self):
        # 0 -> 1 -> 2 -> 3 (tail), ranks = 3,2,1,0
        pram = list_ranking([1, 2, 3, 3]).run()
        n = 4
        assert [pram.memory.read(n + i) for i in range(n)] == [3, 2, 1, 0]

    def test_list_ranking_shuffled(self):
        # list: 2 -> 0 -> 3 -> 1(tail): next[2]=0, next[0]=3, next[3]=1, next[1]=1
        list_ranking([3, 1, 0, 1]).run()

    def test_list_ranking_rejects_cycle(self):
        with pytest.raises(ValueError):
            list_ranking([1, 0])

    def test_matrix_multiply_identity(self):
        ident = [[1, 0], [0, 1]]
        a = [[2, 3], [4, 5]]
        matrix_multiply(a, ident).run()

    def test_matrix_multiply_rejects_ragged(self):
        with pytest.raises(ValueError):
            matrix_multiply([[1, 2]], [[1], [2]])

    @given(st.lists(st.integers(-20, 20), min_size=2, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_odd_even_sort_property(self, values):
        odd_even_sort(values).run()

    def test_histogram_counts(self):
        pram = histogram([1, 1, 1, 0], 2).run()
        assert pram.memory.read(4) == 1
        assert pram.memory.read(5) == 3

    def test_histogram_validates_keys(self):
        with pytest.raises(ValueError):
            histogram([5], 2)


class TestSyntheticTraces:
    def test_permutation_step_is_erew(self):
        step = permutation_step(16, 64, seed=1)
        assert step.is_erew()
        assert step.num_requests == 16

    def test_permutation_step_write_kind(self):
        step = permutation_step(8, 32, seed=2, kind="write")
        assert len(step.writes) == 8 and not step.reads

    def test_permutation_step_validates(self):
        with pytest.raises(ValueError):
            permutation_step(10, 5, seed=0)

    def test_h_relation_step_concurrency(self):
        step = h_relation_step(16, 64, h=3, seed=3)
        assert step.num_requests == 48
        assert step.max_concurrency() <= 3

    def test_hotspot_step_concentrates(self):
        step = hotspot_step(64, 256, hot_addresses=1, hot_fraction=1.0, seed=4)
        assert step.max_concurrency() == 64

    def test_hotspot_fraction_validation(self):
        with pytest.raises(ValueError):
            hotspot_step(4, 16, hot_fraction=1.5)

    def test_local_step_respects_distance(self):
        n, d = 8, 2
        step = local_step_for_mesh(n, d, seed=5)
        assert step.num_requests == n * n
        for req in step.reads:
            pr, pc = divmod(req.pid, n)
            ar, ac = divmod(req.addr, n)
            assert abs(pr - ar) + abs(pc - ac) <= d

    def test_random_trace_shape(self):
        trace = random_trace(16, 64, 5, seed=6)
        assert len(trace) == 5
        assert all(s.is_erew() for s in trace)
        assert trace.total_requests == 80

    def test_random_trace_non_erew(self):
        trace = random_trace(32, 8, 3, seed=7, erew=False)
        assert any(not s.is_erew() for s in trace)
