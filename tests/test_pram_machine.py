"""Tests for the PRAM machine: semantics, modes, write policies, traces."""

import pytest

from repro.pram import (
    PRAM,
    AccessMode,
    ConcurrentAccessError,
    Read,
    SharedMemory,
    Write,
    WritePolicy,
    resolve_writes,
    run_program,
)


class TestSharedMemory:
    def test_default_zero(self):
        m = SharedMemory(10)
        assert m.read(5) == 0

    def test_write_read(self):
        m = SharedMemory(10)
        m.write(3, "x")
        assert m.read(3) == "x"

    def test_bounds(self):
        m = SharedMemory(4)
        with pytest.raises(IndexError):
            m.read(4)
        with pytest.raises(IndexError):
            m.write(-1, 0)

    def test_init_from_iterable(self):
        m = SharedMemory(5, init=[10, 20, 30])
        assert m.snapshot(0, 3) == [10, 20, 30]

    def test_init_from_mapping(self):
        m = SharedMemory(5, init={4: "end"})
        assert m.read(4) == "end"

    def test_snapshot_extent(self):
        m = SharedMemory(100)
        m.write(7, 1)
        assert len(m.snapshot()) == 8

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SharedMemory(0)


class TestResolveWrites:
    def test_single_writer(self):
        assert resolve_writes([(3, "v")], WritePolicy.COMMON) == "v"

    def test_common_agreement(self):
        assert resolve_writes([(0, 7), (1, 7)], WritePolicy.COMMON) == 7

    def test_common_conflict_raises(self):
        with pytest.raises(ConcurrentAccessError):
            resolve_writes([(0, 7), (1, 8)], WritePolicy.COMMON)

    def test_priority_lowest_pid(self):
        assert resolve_writes([(2, "b"), (0, "a")], WritePolicy.PRIORITY) == "a"

    def test_arbitrary_is_deterministic(self):
        assert resolve_writes([(5, "x"), (1, "y")], WritePolicy.ARBITRARY) == "y"

    def test_combine_ops(self):
        writers = [(0, 2), (1, 3), (2, 4)]
        assert resolve_writes(writers, WritePolicy.COMBINE, "sum") == 9
        assert resolve_writes(writers, WritePolicy.COMBINE, "min") == 2
        assert resolve_writes(writers, WritePolicy.COMBINE, "max") == 4

    def test_combine_or_and(self):
        assert resolve_writes([(0, 0), (1, 1)], WritePolicy.COMBINE, "or") == 1
        assert resolve_writes([(0, 1), (1, 0)], WritePolicy.COMBINE, "and") == 0

    def test_combine_bad_op(self):
        with pytest.raises(ValueError):
            resolve_writes([(0, 1), (1, 2)], WritePolicy.COMBINE, "xor")

    def test_empty_writers(self):
        with pytest.raises(ValueError):
            resolve_writes([], WritePolicy.COMMON)


class TestMachineBasics:
    def test_simple_read_write(self):
        def program(pid, n):
            v = yield Read(pid)
            yield Write(pid + n, v * 2)

        pram = run_program(program, 4, 8, init=[1, 2, 3, 4])
        assert pram.memory.snapshot(4, 8) == [2, 4, 6, 8]
        assert pram.steps_executed == 2

    def test_compute_only_steps(self):
        def program(pid, n):
            yield None
            yield Write(pid, pid)

        pram = run_program(program, 3, 3)
        assert pram.memory.snapshot(0, 3) == [0, 1, 2]

    def test_reads_see_pre_step_memory(self):
        # Swap via simultaneous read: both read old values, then write.
        def program(pid, n):
            other = yield Read(1 - pid)
            yield Write(pid, other)

        pram = run_program(program, 2, 2, init=[10, 20])
        assert pram.memory.snapshot(0, 2) == [20, 10]

    def test_processors_may_halt_early(self):
        def program(pid, n):
            yield Write(pid, 1)
            if pid == 0:
                yield Write(n, 99)

        pram = run_program(program, 3, 4)
        assert pram.memory.read(3) == 99
        assert pram.steps_executed == 2

    def test_max_steps_guard(self):
        def forever(pid, n):
            while True:
                yield None

        pram = PRAM(1, 1)
        pram.load(forever)
        with pytest.raises(RuntimeError):
            pram.run(max_steps=10)

    def test_bad_yield_type(self):
        def program(pid, n):
            yield "not a request"

        pram = PRAM(1, 1)
        pram.load(program)
        with pytest.raises(TypeError):
            pram.step()

    def test_needs_processor(self):
        with pytest.raises(ValueError):
            PRAM(0, 1)

    def test_step_after_halt_returns_none(self):
        def program(pid, n):
            yield None

        pram = PRAM(1, 1)
        pram.load(program)
        pram.run()
        assert pram.step() is None


class TestModeEnforcement:
    def test_erew_rejects_concurrent_reads(self):
        def program(pid, n):
            yield Read(0)

        pram = PRAM(2, 1, mode=AccessMode.EREW)
        pram.load(program)
        with pytest.raises(ConcurrentAccessError):
            pram.step()

    def test_crew_allows_concurrent_reads(self):
        def program(pid, n):
            v = yield Read(0)
            yield Write(1 + pid, v)

        pram = run_program(program, 2, 3, mode=AccessMode.CREW, init=[7])
        assert pram.memory.snapshot(1, 3) == [7, 7]

    def test_crew_rejects_concurrent_writes(self):
        def program(pid, n):
            yield Write(0, pid)

        pram = PRAM(2, 1, mode=AccessMode.CREW)
        pram.load(program)
        with pytest.raises(ConcurrentAccessError):
            pram.step()

    def test_exclusive_modes_reject_read_write_same_cell(self):
        def program(pid, n):
            if pid == 0:
                yield Read(0)
            else:
                yield Write(0, 1)

        for mode in (AccessMode.EREW, AccessMode.CREW):
            pram = PRAM(2, 1, mode=mode)
            pram.load(program)
            with pytest.raises(ConcurrentAccessError):
                pram.step()

    def test_crcw_allows_everything(self):
        def program(pid, n):
            v = yield Read(0)
            yield Write(0, v + 1)

        pram = run_program(
            program, 4, 1, mode=AccessMode.CRCW, write_policy=WritePolicy.COMMON
        )
        # all read 0, all write 1 (common) -> fine
        assert pram.memory.read(0) == 1

    def test_crcw_combine_sums_writers(self):
        def program(pid, n):
            yield Write(0, 1)

        pram = run_program(
            program,
            5,
            1,
            mode=AccessMode.CRCW,
            write_policy=WritePolicy.COMBINE,
            combine_op="sum",
        )
        assert pram.memory.read(0) == 5

    def test_crcw_priority(self):
        def program(pid, n):
            yield Write(0, f"proc{pid}")

        pram = run_program(
            program, 4, 1, mode=AccessMode.CRCW, write_policy=WritePolicy.PRIORITY
        )
        assert pram.memory.read(0) == "proc0"


class TestTraceRecording:
    def test_trace_captures_requests(self):
        def program(pid, n):
            v = yield Read(pid)
            yield Write(n + pid, v)

        pram = run_program(program, 3, 6, init=[1, 2, 3])
        assert len(pram.trace) == 2
        step0, step1 = pram.trace.steps
        assert len(step0.reads) == 3 and not step0.writes
        assert len(step1.writes) == 3 and not step1.reads
        assert pram.trace.total_requests == 6

    def test_trace_step_properties(self):
        def program(pid, n):
            yield Read(0)

        pram = PRAM(3, 1, mode=AccessMode.CRCW)
        pram.load(program)
        step = pram.step()
        assert step.max_concurrency() == 3
        assert not step.is_erew()

    def test_trace_disabled(self):
        def program(pid, n):
            yield Write(pid, 1)

        pram = PRAM(2, 2, record_trace=False)
        pram.load(program)
        pram.run()
        assert len(pram.trace) == 0
