"""Tests for Lemma 2.1's restart amplification on leveled networks."""

import numpy as np
import pytest

from repro.routing import LeveledRouter
from repro.topology import DAryButterflyLeveled


class TestRouteWithRestarts:
    def test_normal_allotment_single_round(self):
        net = DAryButterflyLeveled(2, 5)
        router = LeveledRouter(net, seed=1)
        perm = np.random.default_rng(2).permutation(net.column_size)
        stats, rounds = router.route_with_restarts(
            np.arange(net.column_size), perm, allotment=20 * net.num_levels
        )
        assert rounds == 1
        assert stats.completed
        assert stats.delivered == net.column_size

    def test_tight_allotment_forces_restart_but_succeeds(self):
        net = DAryButterflyLeveled(2, 6)
        router = LeveledRouter(net, seed=3)
        perm = np.random.default_rng(4).permutation(net.column_size)
        # 2L + 1 steps: only contention-free packets make the first round
        stats, rounds = router.route_with_restarts(
            np.arange(net.column_size), perm, allotment=2 * net.num_levels + 1
        )
        assert rounds > 1
        assert stats.completed
        assert stats.delivered == net.column_size
        # time accounting: each extra round charges allotment + traceback
        assert stats.steps > (rounds - 1) * (2 * net.num_levels + 1)

    def test_impossible_allotment_raises(self):
        net = DAryButterflyLeveled(2, 4)
        router = LeveledRouter(net, seed=5)
        perm = np.random.default_rng(6).permutation(net.column_size)
        with pytest.raises(RuntimeError):
            # below the 2L path length nothing can ever arrive
            router.route_with_restarts(
                np.arange(net.column_size), perm, allotment=3, max_rounds=3
            )

    def test_parameter_validation(self):
        net = DAryButterflyLeveled(2, 3)
        router = LeveledRouter(net, seed=7)
        with pytest.raises(ValueError):
            router.route_with_restarts([0], [0], allotment=0)
        with pytest.raises(ValueError):
            router.route_with_restarts([0], [0], max_rounds=0)

    def test_aggregate_stats_cover_all_packets(self):
        net = DAryButterflyLeveled(2, 5)
        router = LeveledRouter(net, seed=8)
        perm = np.random.default_rng(9).permutation(net.column_size)
        stats, _rounds = router.route_with_restarts(
            np.arange(net.column_size), perm, allotment=2 * net.num_levels + 2
        )
        assert len(stats.hops) == net.column_size
        # every delivered packet crossed a multiple of... exactly 2L links
        # in its successful round
        assert all(h == 2 * net.num_levels for h in stats.hops)
