"""Fault-injection subsystem: specs, runtime, engines, and hardening.

Four layers, pinned bottom-up:

* **specs** — :class:`FaultPlan` / :class:`FaultSchedule` validation,
  stable event labels, same-step ordering (kills before revives);
* **runtime** — deterministic next-live-cyclic remapping, the
  truth-vs-detected split (``known_dead``), and the piecewise-constant
  link timeline with its per-engine views;
* **engines** — the differential contract extends to faults: under a
  fixed seed and an identical fault spec, the fast path matches the
  reference engine bit for bit (stats, delays, memory, per-step costs),
  including mid-run module kills, link flaps, and slow links; a down
  link stalls like a zero-credit link and never raises DeadlockError;
* **hardening** — the online driver's retry/timeout/backoff policy and
  its exact conservation law: every arrival is delivered, dropped,
  timed out, dead-lettered, or still queued — never silently lost.
"""

import numpy as np
import pytest

from repro.emulation import LeveledEmulator, MeshEmulator
from repro.emulation.base import StepCost
from repro.faults import (
    FaultConfigError,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    RehashStormError,
)
from repro.faults.runtime import FaultState, LinkFaultTimeline
from repro.pram.trace import ReadRequest, StepTrace, WriteRequest, permutation_step
from repro.routing import LeveledRouter, MeshRouter
from repro.topology import DAryButterflyLeveled, Mesh2D
from repro.traffic import (
    DeterministicArrivals,
    OnlineEmulator,
    ScanKeys,
    TrafficRequest,
    UniformKeys,
    WorkloadGenerator,
)

ROUTER_STAT_FIELDS = (
    "steps",
    "delivered",
    "total_packets",
    "max_queue",
    "completed",
    "combines",
    "max_node_load",
    "credits_stalled",
    "escape_hops",
    "fault_stalls",
)


def assert_router_stats_equal(fast, ref):
    for f in ROUTER_STAT_FIELDS:
        assert getattr(fast, f) == getattr(ref, f), f
    assert fast.delays == ref.delays
    assert fast.hops == ref.hops


def cost_tuple(c: StepCost):
    return (
        c.request_steps,
        c.reply_steps,
        c.rehashes,
        c.combines,
        c.max_queue,
        c.credits_stalled,
        c.stall_steps,
        c.fault_stalls,
        c.deadlock_retries,
    )


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


class TestFaultSpecs:
    def test_unknown_event_kind_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(0, "melt_module", 3)

    def test_negative_step_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(-1, "kill_module", 3)

    def test_slow_link_needs_period(self):
        with pytest.raises(FaultConfigError):
            FaultEvent(0, "slow_link", (0, 1))
        with pytest.raises(FaultConfigError):
            FaultEvent(0, "slow_link", (0, 1), period=1)
        with pytest.raises(FaultConfigError):
            FaultSchedule().kill_module(0, 3).add(
                FaultEvent(0, "link_down", (0, 1), period=2)
            )

    def test_plan_rejects_negative_ids(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(dead_modules=[-1])
        with pytest.raises(FaultConfigError):
            FaultPlan(dead_processors=[2, -3])

    def test_describe_labels_are_stable(self):
        assert FaultEvent(50, "kill_module", 12).describe() == "kill_module(12)@50"
        assert (
            FaultEvent(7, "slow_link", (3, 4), period=3).describe()
            == "slow_link((3, 4), period=3)@7"
        )

    def test_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan(dead_modules=[1])
        assert not FaultSchedule()
        assert FaultSchedule(plan=FaultPlan(dead_processors=[0]))
        assert FaultSchedule().link_down(5, (0, 1))

    def test_same_step_events_sort_kills_before_revives(self):
        sched = FaultSchedule().revive_module(10, 2).kill_module(10, 2)
        kinds = [e.kind for e in sched.module_events]
        assert kinds == ["kill_module", "revive_module"]
        sched2 = FaultSchedule().link_up(4, (0, 1)).link_down(4, (0, 1))
        assert [e.kind for e in sched2.link_events] == ["link_down", "link_up"]


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------


class TestFaultState:
    def test_out_of_range_ids_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultState(
                FaultPlan(dead_modules=[8]), num_modules=8, num_processors=8
            )
        with pytest.raises(FaultConfigError):
            FaultState(
                FaultPlan(dead_processors=[9]), num_modules=8, num_processors=8
            )
        with pytest.raises(FaultConfigError):
            FaultState(
                FaultSchedule().kill_module(0, 8),
                num_modules=8,
                num_processors=8,
            )

    def test_all_dead_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultState(
                FaultPlan(dead_modules=range(4)), num_modules=4, num_processors=4
            )
        sched = FaultSchedule()
        for m in range(4):
            sched.kill_module(10 * m, m)
        with pytest.raises(FaultConfigError):
            FaultState(sched, num_modules=4, num_processors=4)

    def test_remap_is_next_live_cyclic(self):
        st = FaultState(
            FaultPlan(dead_modules=[2, 3, 7]), num_modules=8, num_processors=8
        )
        assert st.map_module(2) == 4
        assert st.map_module(3) == 4
        assert st.map_module(7) == 0  # wraps
        assert st.map_module(5) == 5  # live ids are identity
        got = st.map_modules(np.arange(8)).tolist()
        assert got == [0, 1, 4, 4, 4, 5, 6, 0]

    def test_processor_remap(self):
        st = FaultState(
            FaultPlan(dead_processors=[0, 5]), num_modules=8, num_processors=6
        )
        assert st.map_processor(0) == 1
        assert st.map_processor(5) == 1  # wraps past the dead head
        assert st.map_processors(np.array([0, 3, 5])).tolist() == [1, 3, 1]

    def test_detection_lag_and_acknowledge(self):
        st = FaultState(
            FaultSchedule().kill_module(10, 3).revive_module(30, 3),
            num_modules=8,
            num_processors=8,
        )
        # truth follows the schedule ...
        assert st.dead_modules_at(9) == frozenset()
        assert st.dead_modules_at(10) == {3}
        assert st.dead_modules_at(30) == frozenset()
        # ... but the remap only moves after detection
        assert st.known_dead == frozenset()
        assert st.map_module(3) == 3
        assert st.undetected_dead(15) == {3}
        assert st.acknowledge(15) == {3}
        assert st.map_module(3) == 4
        assert st.undetected_dead(15) == frozenset()
        # revive becomes visible via refresh
        assert st.refresh(30) == {3}
        assert st.known_dead == frozenset()
        assert st.map_module(3) == 3

    def test_static_faults_known_from_step_zero(self):
        st = FaultState(
            FaultPlan(dead_modules=[1]), num_modules=4, num_processors=4
        )
        assert st.known_dead == {1}
        assert st.undetected_dead(0) == frozenset()

    def test_events_between(self):
        sched = (
            FaultSchedule()
            .kill_module(10, 1)
            .link_down(20, (0, 1))
            .revive_module(30, 1)
        )
        st = FaultState(sched, num_modules=4, num_processors=4)
        assert st.events_between(10, 30) == [
            "kill_module(1)@10",
            "link_down((0, 1))@20",
        ]
        assert st.events_between(0, 10) == []


class TestLinkTimeline:
    def test_piecewise_segments(self):
        sched = FaultSchedule().link_down(5, (0, 1)).link_up(12, (0, 1))
        tl = LinkFaultTimeline(sched.link_events)
        assert tl.segment_at(0) == (frozenset(), ())
        assert tl.segment_at(4) == (frozenset(), ())
        assert tl.segment_at(5)[0] == {(0, 1)}
        assert tl.segment_at(11)[0] == {(0, 1)}
        assert tl.segment_at(12) == (frozenset(), ())
        assert tl.segment_at(10**6) == (frozenset(), ())

    def test_same_step_down_then_up_leaves_link_up(self):
        sched = FaultSchedule().link_up(8, (0, 1)).link_down(8, (0, 1))
        tl = LinkFaultTimeline(sched.link_events)
        assert tl.segment_at(8) == (frozenset(), ())

    def test_slow_link_phases_through_view(self):
        sched = FaultSchedule().slow_link(0, (2, 3), period=3).restore_link(
            9, (2, 3)
        )
        tl = LinkFaultTimeline(sched.link_events)
        assert tl.has_slow_links
        view = tl.view(lambda spec: (spec,))
        for t in range(9):
            static, extra = view.parts_at(t)
            assert static == frozenset()
            if t % 3 == 0:
                assert extra == ()  # transmit phase
            else:
                assert extra == ((2, 3),)  # blocked phase
        assert tl.view(lambda s: (s,)).parts_at(9) == (frozenset(), ())

    def test_down_overrides_slow(self):
        sched = (
            FaultSchedule()
            .slow_link(0, (2, 3), period=2)
            .link_down(4, (2, 3))
            .link_up(8, (2, 3))
        )
        view = LinkFaultTimeline(sched.link_events).view(lambda s: (s,))
        static, extra = view.parts_at(5)
        assert static == {(2, 3)} and extra == ()
        # after link_up the slowdown persists
        static, extra = view.parts_at(9)
        assert static == frozenset() and extra == ((2, 3),)

    def test_view_static_identity_stable_within_segment(self):
        sched = FaultSchedule().link_down(3, (0, 1))
        view = LinkFaultTimeline(sched.link_events).view(lambda s: (s,))
        a, _ = view.parts_at(5)
        b, _ = view.parts_at(6)
        assert a is b  # engines cache derived masks on identity

    def test_translate_fans_out_engine_keys(self):
        sched = FaultSchedule().link_down(0, (1, 4, 6))
        view = LinkFaultTimeline(sched.link_events).view(
            lambda spec: ((0, spec), (1, spec))
        )
        static, _ = view.parts_at(0)
        assert static == {(0, (1, 4, 6)), (1, (1, 4, 6))}


# ---------------------------------------------------------------------------
# routers: fault differential, fast vs reference
# ---------------------------------------------------------------------------


def _timeline(sched: FaultSchedule) -> LinkFaultTimeline:
    return LinkFaultTimeline(sched.link_events)


class TestRouterFaultDifferential:
    def test_mesh_link_flap_matches(self):
        mesh = Mesh2D.square(4)
        sched = (
            FaultSchedule()
            .link_down(0, (1, 2))
            .link_down(0, (2, 1))
            .link_up(40, (1, 2))
            .link_up(40, (2, 1))
        )
        perm = np.random.default_rng(3).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh, seed=11, engine=engine, link_faults=_timeline(sched)
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert fast.fault_stalls > 0  # the flap actually blocked traffic
        assert_router_stats_equal(fast, ref)

    def test_mesh_slow_link_matches(self):
        mesh = Mesh2D.square(4)
        sched = FaultSchedule().slow_link(0, (5, 9), period=3).slow_link(
            0, (9, 5), period=3
        )
        perm = np.random.default_rng(8).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh, seed=2, engine=engine, link_faults=_timeline(sched)
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert fast.fault_stalls > 0
        assert_router_stats_equal(fast, ref)

    def test_mesh_fault_base_offsets_the_clock(self):
        """The same run launched after the flap ended sees no faults."""
        mesh = Mesh2D.square(4)
        sched = FaultSchedule().link_down(0, (1, 2)).link_up(40, (1, 2))
        perm = np.random.default_rng(3).permutation(mesh.num_nodes)

        def run(base):
            return MeshRouter(
                mesh,
                seed=11,
                engine="fast",
                link_faults=_timeline(sched),
                fault_base=base,
            ).route_permutation(perm)

        assert run(0).fault_stalls > 0
        assert run(1000).fault_stalls == 0

    @pytest.mark.parametrize("intermediate", ["coin", "node"])
    def test_leveled_link_flap_matches(self, intermediate):
        net = DAryButterflyLeveled(2, 4)
        v = net.out_neighbors(1, 0)[1]
        w = net.out_neighbors(0, 3)[0]
        sched = (
            FaultSchedule()
            .link_down(0, (1, 0, v))
            .link_up(30, (1, 0, v))
            .slow_link(0, (0, 3, w), period=3)
        )
        perm = np.random.default_rng(5).permutation(net.column_size)

        def run(engine):
            return LeveledRouter(
                net,
                intermediate=intermediate,
                seed=7,
                engine=engine,
                link_faults=_timeline(sched),
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert fast.fault_stalls > 0
        assert_router_stats_equal(fast, ref)

    def test_down_link_stalls_without_deadlock_error(self):
        """A permanently down link wedges traffic like a zero-credit
        link: the run times out incomplete — it never raises — and both
        engines agree on the wedged stats."""
        mesh = Mesh2D.square(4)
        sched = FaultSchedule().link_down(0, (1, 2)).link_down(0, (2, 1))
        perm = np.random.default_rng(3).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh,
                seed=11,
                engine=engine,
                node_capacity=4,
                flow_control="credit",
                link_faults=_timeline(sched),
            ).route_permutation(perm, max_steps=60)

        fast, ref = run("fast"), run("reference")
        assert not fast.completed
        assert fast.fault_stalls > 0
        assert_router_stats_equal(fast, ref)

    def test_out_of_range_spec_rejected(self):
        mesh = Mesh2D.square(2)
        tl = _timeline(FaultSchedule().link_down(0, (0, 99)))
        router = MeshRouter(mesh, seed=1, engine="reference", link_faults=tl)
        with pytest.raises(ValueError, match="out of range"):
            router.route_permutation([1, 0, 3, 2], max_steps=8)


# ---------------------------------------------------------------------------
# emulators: fault differential, fast vs reference
# ---------------------------------------------------------------------------


def _mesh_emu(engine, *, mode="crcw", faults=None, **kw):
    return MeshEmulator(
        Mesh2D.square(6), 128, mode=mode, seed=21, engine=engine,
        faults=faults, **kw,
    )


class TestEmulatorFaultDifferential:
    @pytest.mark.parametrize("mode", ["erew", "crcw"])
    def test_mesh_static_plan_and_flap_matches(self, mode):
        n = 36
        sched = FaultSchedule(plan=FaultPlan(dead_modules=[3, 17, 30]))
        sched.link_down(0, (1, 2)).link_up(60, (1, 2))
        sched.slow_link(0, (7, 13), period=3)
        steps = [
            permutation_step(n, 128, seed=2),
            permutation_step(n, 128, seed=4, kind="write"),
            permutation_step(n, 128, seed=6),
        ]

        def run(engine):
            em = _mesh_emu(engine, mode=mode, faults=sched)
            costs = [cost_tuple(em.emulate_step(s)) for s in steps]
            mem = [em.memory.read(a) for a in range(128)]
            return costs, mem, em.virtual_clock

        fast, ref = run("fast"), run("reference")
        assert fast == ref
        assert any(c[7] > 0 for c in fast[0])  # some fault stalls charged

    def test_mesh_scheduled_kill_detected_and_matches(self):
        """A mid-run kill is invisible until a request aims at the dead
        module; then the step fail-fasts, acknowledges, rehashes, and
        both engines replay the identical recovery."""
        n = 36
        probe = _mesh_emu("fast")
        victim = int(probe.hash.map(np.array([0]))[0])
        sched = FaultSchedule().kill_module(0, victim)
        steps = [
            permutation_step(n, 128, seed=2),
            permutation_step(n, 128, seed=4, kind="write"),
        ]

        def run(engine):
            em = _mesh_emu(engine, faults=sched)
            costs, failfasts = [], []
            for s in steps:
                c = em.emulate_step(s)
                costs.append(cost_tuple(c))
                failfasts.append(c.run_modes.count("fault-failfast"))
            mem = [em.memory.read(a) for a in range(128)]
            return costs, failfasts, mem, em.faults.known_dead

        fast, ref = run("fast"), run("reference")
        assert fast == ref
        assert sum(fast[1]) >= 1  # some step fail-fast-detected the kill
        assert sum(c[2] for c in fast[0]) >= 1  # and burned a rehash
        assert victim in fast[3]

    def test_mesh_memory_correct_under_dead_modules(self):
        em = _mesh_emu("fast", faults=FaultPlan(dead_modules=[0, 9, 20, 33]))
        step = StepTrace()
        for pid in range(36):
            step.writes.append(WriteRequest(pid, pid, 1000 + pid))
        em.emulate_step(step)
        rd = StepTrace()
        for pid in range(36):
            rd.reads.append(ReadRequest(pid, pid))
        em.emulate_step(rd)
        assert [em.memory.read(a) for a in range(36)] == [
            1000 + a for a in range(36)
        ]
        for a in range(128):
            assert em.module_of(a) not in {0, 9, 20, 33}

    def test_mesh_dead_processor_requests_proxied(self):
        em = _mesh_emu("fast", faults=FaultPlan(dead_processors=[3]))
        step = StepTrace()
        step.writes.append(WriteRequest(3, 5, 77))
        cost = em.emulate_step(step)
        assert cost.requests == 1
        assert em.memory.read(5) == 77

    def test_no_faults_is_rng_neutral(self):
        """Passing an empty schedule must not perturb the seeded run."""
        steps = [permutation_step(36, 128, seed=2)]
        a = _mesh_emu("fast")
        b = _mesh_emu("fast", faults=FaultSchedule())
        assert cost_tuple(a.emulate_step(steps[0])) == cost_tuple(
            b.emulate_step(steps[0])
        )

    def test_leveled_static_plan_and_flap_matches(self):
        net = DAryButterflyLeveled(2, 4)
        n = net.column_size
        v = net.out_neighbors(1, 0)[1]
        sched = FaultSchedule(plan=FaultPlan(dead_modules=[5]))
        sched.link_down(0, (1, 0, v)).link_up(40, (1, 0, v))
        steps = [
            permutation_step(n, 64, seed=3),
            permutation_step(n, 64, seed=5, kind="write"),
        ]

        def run(engine):
            em = LeveledEmulator(
                net, 64, mode="crcw", seed=17, engine=engine, faults=sched
            )
            costs = [cost_tuple(em.emulate_step(s)) for s in steps]
            mem = [em.memory.read(a) for a in range(64)]
            return costs, mem, em.virtual_clock

        fast, ref = run("fast"), run("reference")
        assert fast == ref
        assert any(c[7] > 0 for c in fast[0])

    def test_leveled_scheduled_kill_matches(self):
        net = DAryButterflyLeveled(2, 4)
        n = net.column_size
        probe = LeveledEmulator(net, 64, mode="crcw", seed=17, engine="fast")
        victim = int(probe.hash.map(np.array([0]))[0])
        sched = FaultSchedule().kill_module(0, victim).revive_module(10**6, victim)
        steps = [
            permutation_step(n, 64, seed=3),
            permutation_step(n, 64, seed=5, kind="write"),
        ]

        def run(engine):
            em = LeveledEmulator(
                net, 64, mode="crcw", seed=17, engine=engine, faults=sched
            )
            costs = [cost_tuple(em.emulate_step(s)) for s in steps]
            return costs, em.faults.known_dead

        fast, ref = run("fast"), run("reference")
        assert fast == ref
        assert victim in fast[1]

    def test_bad_link_specs_rejected_at_construction(self):
        with pytest.raises(ValueError, match="not a mesh edge"):
            _mesh_emu("fast", faults=FaultSchedule().link_down(0, (0, 35)))
        with pytest.raises(ValueError, match="out of range"):
            _mesh_emu("fast", faults=FaultSchedule().link_down(0, (0, 99)))
        with pytest.raises(ValueError, match="out of range"):
            LeveledEmulator(
                DAryButterflyLeveled(2, 3),
                32,
                seed=1,
                faults=FaultSchedule().link_down(0, (9, 0, 1)),
            )


# ---------------------------------------------------------------------------
# driver hardening (stubbed emulator: exact control over failures)
# ---------------------------------------------------------------------------


class _StubEmulator:
    """Scripted emulator: each emulate_step pops the next outcome —
    a StepCost to return or a RehashStormError to raise."""

    def __init__(self, outcomes):
        self._outcomes = list(outcomes)
        self.virtual_clock = 0

    def emulate_step(self, step):
        out = self._outcomes.pop(0) if self._outcomes else StepCost(1, 1)
        if isinstance(out, Exception):
            raise out
        return out


class _StubWorkload:
    """Fixed per-epoch arrival lists (pads with empty epochs)."""

    def __init__(self, epochs, n_procs=4, address_space=64):
        self._epochs = [list(e) for e in epochs]
        self.n_procs = n_procs
        self.address_space = address_space

    def stream(self, epochs):
        out = list(self._epochs[:epochs])
        out += [[] for _ in range(epochs - len(out))]
        return out


def _req(rid, addr, *, pid=0, epoch=0):
    return TrafficRequest(
        rid=rid, pid=pid, addr=addr, kind="write", epoch=epoch, value=rid
    )


class TestDriverHardening:
    def test_param_validation(self):
        emu, wl = _StubEmulator([]), _StubWorkload([])
        with pytest.raises(ValueError):
            OnlineEmulator(emu, wl, request_timeout=0)
        with pytest.raises(ValueError):
            OnlineEmulator(emu, wl, retry_limit=-1)
        with pytest.raises(ValueError):
            OnlineEmulator(emu, wl, backoff=0)
        with pytest.raises(ValueError):
            OnlineEmulator(emu, wl, rehash_storm_cap=0)

    def test_retry_backoff_then_dead_letter(self):
        """Two consecutive storms: first failure re-enqueues with
        backoff, second exhausts retry_limit=1 and dead-letters."""
        storm = lambda: RehashStormError("wedged", stall_steps=2)
        emu = _StubEmulator([storm(), storm(), storm()])
        wl = _StubWorkload([[_req(0, 5), _req(1, 6)]])
        drv = OnlineEmulator(emu, wl, retry_limit=1, backoff=4)
        report = drv.run(6)
        assert report.total_retried == 2  # first failure, both requests
        assert report.total_dead_lettered == 2  # second failure kills them
        assert [att for _r, _s, att in drv.dead_letters] == [1, 1]
        assert report.total_delivered == 0
        assert report.conservation_deficit() == 0
        # failed steps charged their stalls to the clock
        assert report.total_stall_steps >= 4

    def test_backoff_fast_forward_jumps_the_clock(self):
        """With every queued head backing off, the driver jumps to the
        earliest eligibility instead of spinning idle epochs."""
        emu = _StubEmulator(
            [RehashStormError("wedged", stall_steps=0), StepCost(3, 2)]
        )
        wl = _StubWorkload([[_req(0, 5)]])
        drv = OnlineEmulator(emu, wl, retry_limit=3, backoff=4)
        report = drv.run(3)
        e0, e1, e2 = report.epochs
        # epoch 0: the step fails, the retry backs off to not_before=4,
        # and with nothing else admissible the clock fast-forwards there
        assert e0.retried == 1 and e0.admitted == 0
        assert e0.stall_steps == 4 and e0.clock == 4
        # epoch 1: retry admitted and served (cost 5 -> clock 9)
        assert e1.admitted == 1 and e1.clock == 9
        assert e1.sojourns == [9]  # true arrival -> delivery sojourn
        assert e2.admitted == 0 and e2.clock == 9  # idle tail epoch
        assert report.conservation_deficit() == 0

    def test_request_timeout_expires_at_admission(self):
        """Exclusive admission serializes a hot address; requests stuck
        past their deadline expire instead of admitting."""
        emu = _StubEmulator([StepCost(2, 2)] * 4)
        wl = _StubWorkload([[_req(0, 7), _req(1, 7), _req(2, 7)]])
        drv = OnlineEmulator(emu, wl, exclusive=True, request_timeout=3)
        report = drv.run(3)
        assert report.total_delivered == 1  # epoch 0 served one
        # epoch 1: clock=4, both queued heads are 4 > 3 steps old
        assert report.epochs[1].timed_out == 2
        assert report.total_timed_out == 2
        assert report.conservation_deficit() == 0

    def test_rehash_storm_cap_aborts_the_run(self):
        emu = _StubEmulator([StepCost(1, 1, rehashes=5)])
        wl = _StubWorkload([[_req(0, 5)]])
        drv = OnlineEmulator(emu, wl, rehash_storm_cap=4)
        with pytest.raises(RehashStormError, match="cap 4"):
            drv.run(1)

    def test_storm_cap_tolerates_capped_rehashes(self):
        emu = _StubEmulator([StepCost(1, 1, rehashes=4)])
        wl = _StubWorkload([[_req(0, 5)]])
        report = OnlineEmulator(emu, wl, rehash_storm_cap=4).run(1)
        assert report.total_delivered == 1

    def test_admit_matches_skip_scan_reference(self):
        """The sub-queue + heap admission must reproduce the old
        whole-backlog skip-scan order exactly (exclusive mode)."""
        rng = np.random.default_rng(42)
        reqs = [_req(i, int(rng.integers(6))) for i in range(60)]
        drv = OnlineEmulator(
            _StubEmulator([]),
            _StubWorkload([], n_procs=5),
            exclusive=True,
        )
        from collections import deque

        model = deque(reqs)
        for r in reqs:
            drv._enqueue(r, 0, 0)

        def model_admit(limit):
            batch, skipped, seen = [], [], set()
            while model and len(batch) < limit:
                r = model.popleft()
                if r.addr in seen:
                    skipped.append(r)
                    continue
                seen.add(r.addr)
                batch.append(r)
            for r in reversed(skipped):
                model.appendleft(r)
            return batch

        while drv.backlog:
            got = [r.rid for r, _ in drv._admit()]
            want = [r.rid for r in model_admit(drv.admit_limit)]
            assert got == want
        assert not model

    def test_queue_property_is_fifo_snapshot(self):
        drv = OnlineEmulator(_StubEmulator([]), _StubWorkload([]))
        for i, addr in enumerate([3, 1, 3, 2]):
            drv._enqueue(_req(i, addr), stamp=i, not_before=0)
        assert [r.rid for r, _ in drv.queue] == [0, 1, 2, 3]
        assert [s for _r, s in drv.queue] == [0, 1, 2, 3]
        assert drv.backlog == 4

    def test_non_exclusive_admission_is_plain_fifo(self):
        drv = OnlineEmulator(
            _StubEmulator([]), _StubWorkload([], n_procs=8), exclusive=False
        )
        for i, addr in enumerate([5, 5, 5, 2, 5]):
            drv._enqueue(_req(i, addr), 0, 0)
        assert [r.rid for r, _ in drv._admit()] == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# online integration: faults end to end
# ---------------------------------------------------------------------------


def _kill_schedule():
    sched = FaultSchedule()
    for m in (10, 20, 30, 41):
        sched.kill_module(40, m)
    return sched


def _online_faulty(engine):
    em = MeshEmulator(
        Mesh2D.square(8),
        256,
        mode="crcw",
        seed=5,
        engine=engine,
        faults=_kill_schedule(),
    )
    wl = WorkloadGenerator(
        64,
        arrivals=DeterministicArrivals(48.0),
        keys=UniformKeys(256),
        read_fraction=0.7,
        seed=9,
    )
    return OnlineEmulator(em, wl)


class TestOnlineFaultRuns:
    def test_mid_run_kill_conserves_and_recovers(self):
        """ISSUE acceptance: kill 4 of 64 modules mid-run — finite
        recovery, zero silently-lost requests, annotated telemetry."""
        report = _online_faulty("fast").run(24)
        assert report.conservation_deficit() == 0
        assert report.total_dead_lettered == 0
        assert report.total_delivered > 0
        # the kill epoch is annotated with stable labels
        log = report.fault_event_log
        assert log and all(lbl.endswith("@40") for _e, lbl in log)
        assert any(lbl.startswith("kill_module(10)") for _e, lbl in log)
        # detection showed up as fail-fast + rehash
        assert report.total_rehashes > 0
        assert "fault-failfast" in report.run_mode_counts()
        # recovery is finite
        recs = report.recovery_times()
        assert recs
        for r in recs:
            assert r["recovered_epoch"] is not None
            assert r["recovery_steps"] is not None
        # degraded-mode load accounting: served-module counts align with
        # deliveries, and dead modules vanish from the tail epochs
        counts = report.module_service_counts()
        assert sum(counts.values()) == report.total_delivered
        tail_modules = {m for e in report.epochs[-5:] for m in e.modules}
        assert tail_modules.isdisjoint({10, 20, 30, 41})
        assert report.module_hotness(top=3)[0][1] >= report.module_hotness()[-1][1]

    def test_online_fault_run_engine_independent(self):
        """Same seed + same schedule: fast and reference online runs
        produce identical telemetry (modulo engine-mode labels)."""

        def strip(d):
            d = dict(d)
            d.pop("run_mode_counts")
            d["epochs"] = [
                {k: v for k, v in e.items() if k != "run_modes"}
                for e in d["epochs"]
            ]
            return d

        fast = _online_faulty("fast").run(12)
        ref = _online_faulty("reference").run(12)
        assert strip(fast.to_dict()) == strip(ref.to_dict())

    def test_unreachable_direct_module_dead_letters_exactly(self):
        """Direct placement pins addr 3 to node 3; cutting both wires
        into node 3 makes those requests unroutable — they retry with
        backoff, then dead-letter, and the books still balance."""
        sched = FaultSchedule().link_down(0, (1, 3)).link_down(0, (2, 3))
        em = MeshEmulator(
            Mesh2D.square(2),
            4,
            mode="crcw",
            placement="direct",
            seed=3,
            engine="fast",
            faults=sched,
            max_rehashes=1,
        )
        wl = WorkloadGenerator(
            4,
            arrivals=DeterministicArrivals(4.0),
            keys=ScanKeys(4, scan_length=1),
            read_fraction=0.0,
            seed=1,
        )
        drv = OnlineEmulator(em, wl, retry_limit=2, backoff=2)
        report = drv.run(8)
        assert report.conservation_deficit() == 0
        assert report.total_dead_lettered > 0
        assert report.total_retried > 0
        assert report.total_delivered > 0
        assert report.total_stall_steps > 0
        assert len(drv.dead_letters) == report.total_dead_lettered
        for _req_, _stamp, attempts in drv.dead_letters:
            assert attempts == 2  # exhausted exactly retry_limit


# ---------------------------------------------------------------------------
# determinism pins for the REPRO003 lint fixes (tools/lint)
# ---------------------------------------------------------------------------


class TestUnorderedIterFixPins:
    """The lint (REPRO003) surfaced set-iteration sites in the fault and
    routing hot paths; these tests pin the *behavior* of the fixed code
    so reverting sorted(...) back to raw set order cannot slip through
    even if the lint itself were relaxed."""

    def test_remap_array_matches_bruteforce(self):
        """_remap_array iterates the dead set in sorted order; each dead
        id must land on its next live id independent of set hash order."""
        from repro.faults.runtime import _remap_array

        n = 33
        dead = frozenset({1, 2, 3, 7, 16, 31, 32})
        remap = _remap_array(n, dead, "module")
        live = sorted(set(range(n)) - dead)
        for m in range(n):
            if m in dead:
                expect = next((x for x in live if x > m), live[0])
            else:
                expect = m
            assert remap[m] == expect, m

    def test_remap_rebuild_is_repeatable(self):
        """Detection order must not change the remap: acknowledging the
        same fault set yields the identical array across fresh states."""
        sched = (
            FaultSchedule()
            .kill_module(5, 6)
            .kill_module(5, 1)
            .kill_module(5, 14)
        )
        snaps = []
        for _ in range(3):
            st = FaultState(sched, num_modules=16, num_processors=16)
            st.acknowledge(5)
            snaps.append(st.map_modules(np.arange(16)).tolist())
        assert snaps[0] == snaps[1] == snaps[2]

    def test_mesh_many_down_links_matches(self):
        """Several simultaneous down links: the engines translate the
        fault segment's key set (a frozenset) in sorted order, so the
        differential contract must hold with a multi-element set."""
        mesh = Mesh2D.square(4)
        sched = FaultSchedule()
        for u, w in [(1, 2), (2, 1), (5, 6), (6, 5), (9, 13), (13, 9)]:
            sched.link_down(0, (u, w)).link_up(60, (u, w))
        perm = np.random.default_rng(21).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh, seed=4, engine=engine, link_faults=_timeline(sched)
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert fast.fault_stalls > 0
        assert_router_stats_equal(fast, ref)

    def test_mesh_credit_flow_with_down_links_matches(self):
        """Credit flow control plus link faults drives the fast engine's
        used-wire bookkeeping (a set, iterated sorted) alongside the
        fault mask; fast and reference must still agree bit for bit."""
        mesh = Mesh2D.square(4)
        sched = (
            FaultSchedule()
            .link_down(0, (1, 2))
            .link_down(0, (2, 1))
            .link_up(50, (1, 2))
            .link_up(50, (2, 1))
        )
        perm = np.random.default_rng(12).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh,
                seed=9,
                engine=engine,
                node_capacity=4,
                flow_control="credit",
                link_faults=_timeline(sched),
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert fast.fault_stalls > 0
        assert_router_stats_equal(fast, ref)
