"""Node-capacity backpressure invariants, in both engines (§3.4 / [6]).

The capacity model's whole point (Corollary 3.3, à la Leighton et al.
and the Karlin–Upfal-style memory emulators) is an O(1) bound on the
packets resident at any node.  Before the fix, the engine checked a
node's load *before* the step's arrivals, so N in-links of a full node
could all transmit in the same step — a capacity-1 hub would reach
``max_node_load == N``.  These tests pin the repaired discipline:

* arrival slots are reserved as links transmit, so ``max_node_load``
  never exceeds ``node_capacity`` (delivered-at-destination heads are
  exempt — they occupy no queue space);
* a capacity-stalled link does not burn one of its node's
  ``node_service_rate`` slots while a ready sibling link idles;
* both engines implement the discipline bit for bit.
"""

import numpy as np
import pytest

from repro.routing import (
    DeadlockError,
    FastPathEngine,
    GreedyMeshRouter,
    GreedyRouter,
    MeshRouter,
    Packet,
    SynchronousEngine,
    make_packets,
)
from repro.topology import LinearArray, Mesh2D

# Shared with the differential suite so both agree on what "engines
# agree" means when RoutingStats grows a field.
from test_fast_engine import assert_stats_equal


class TestHubStarRegression:
    """Five sources feed one hub that forwards to a sink: with capacity 1
    the hub must never hold more than one resident packet."""

    HUB, SINK = 5, 6

    def _route(self, p: Packet):
        if p.node == self.SINK:
            return None
        return self.SINK if p.node == self.HUB else self.HUB

    def _packets(self):
        return make_packets([0, 1, 2, 3, 4], [self.SINK] * 5)

    def test_reference_engine_respects_capacity(self):
        engine = SynchronousEngine(node_capacity=1)
        stats = engine.run(self._packets(), self._route, max_steps=100)
        assert stats.completed
        assert stats.max_node_load == 1

    def test_fast_engine_respects_capacity(self):
        engine = FastPathEngine(node_capacity=1)
        paths = [[s, self.HUB, self.SINK] for s in range(5)]
        stats = engine.run(self._packets(), paths, num_nodes=7, max_steps=100)
        assert stats.completed
        assert stats.max_node_load == 1

    def test_engines_agree_exactly(self):
        ref = SynchronousEngine(node_capacity=1).run(
            self._packets(), self._route, max_steps=100
        )
        fast = FastPathEngine(node_capacity=1).run(
            self._packets(),
            [[s, self.HUB, self.SINK] for s in range(5)],
            num_nodes=7,
            max_steps=100,
        )
        assert_stats_equal(fast, ref)


class TestServiceSlotInteraction:
    """A capacity-stalled link must not consume a node's service slot.

    Node 0 drives two links: (0,1) with two packets bound past node 1
    (held full forever by a deadlocked pair at nodes 1 and 3) and (0,2)
    with one deliverable packet.  The queue-length sort picks (0,1)
    first; before the fix its stall burned node 0's single slot every
    step and the (0,2) packet never moved.
    """

    # pid -> itinerary (including start)
    PATHS = {
        0: [0, 1, 3, 9],  # stalls at 0: node 1 permanently full
        1: [0, 1, 3, 9],  # second packet, makes (0,1) the longer queue
        2: [0, 2],  # deliverable immediately once it gets a slot
        3: [1, 3, 9],  # deadlocked: waits on node 3
        4: [3, 1, 9],  # deadlocked: waits on node 1
    }

    def _packets(self):
        return make_packets(
            [p[0] for p in self.PATHS.values()],
            [p[-1] for p in self.PATHS.values()],
        )

    def _next_hop(self, p: Packet):
        path = self.PATHS[p.pid]
        if p.node == p.dest:
            return None
        return path[path.index(p.node) + 1]

    def test_reference_ready_link_gets_the_slot(self):
        pkts = self._packets()
        engine = SynchronousEngine(node_capacity=1, node_service_rate=1)
        # The deadlocked pair never resolves: the detector reports it
        # (with the run's stats attached) instead of spinning.
        with pytest.raises(DeadlockError) as exc:
            engine.run(pkts, self._next_hop, max_steps=10)
        assert not exc.value.stats.completed
        assert pkts[2].arrived_at == 1  # but the ready link sent at once

    def test_fast_ready_link_gets_the_slot(self):
        pkts = self._packets()
        engine = FastPathEngine(node_capacity=1, node_service_rate=1)
        with pytest.raises(DeadlockError) as exc:
            engine.run(pkts, list(self.PATHS.values()), num_nodes=10, max_steps=10)
        assert not exc.value.stats.completed
        assert pkts[2].arrived_at == 1

    def test_engines_agree_exactly(self):
        with pytest.raises(DeadlockError) as ref_exc:
            SynchronousEngine(node_capacity=1, node_service_rate=1).run(
                self._packets(), self._next_hop, max_steps=10
            )
        with pytest.raises(DeadlockError) as fast_exc:
            FastPathEngine(node_capacity=1, node_service_rate=1).run(
                self._packets(),
                list(self.PATHS.values()),
                num_nodes=10,
                max_steps=10,
            )
        assert_stats_equal(fast_exc.value.stats, ref_exc.value.stats)


def _run_both(make_router, sources, dests, max_steps):
    fast = make_router("fast").route(sources, dests, max_steps=max_steps)
    ref = make_router("reference").route(sources, dests, max_steps=max_steps)
    assert_stats_equal(fast, ref)
    return fast


class TestCapacityPropertySweep:
    """Random many-to-one workloads: the capacity invariant holds, the
    run completes, and the engines agree field for field.

    Sources are distinct (one injected packet per node, within the
    cap); destinations concentrate on a few random hubs.  Capacities are
    chosen deadlock-free for the crossing-flow patterns — too-tight caps
    can legitimately deadlock (both engines agree on that too, but the
    sweep pins the productive regime).
    """

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_greedy_mesh_single_hub(self, seed, cap):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        hub = int(rng.integers(n))
        stats = _run_both(
            lambda eng: GreedyMeshRouter(mesh, node_capacity=cap, engine=eng),
            np.arange(n),
            [hub] * n,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_mesh_many_to_few(self, seed):
        cap = 6
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        stats = _run_both(
            lambda eng: GreedyMeshRouter(mesh, node_capacity=cap, engine=eng),
            np.arange(n),
            dests,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cap", [4, 8])
    def test_three_stage_mesh_many_to_few(self, seed, cap):
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        stats = _run_both(
            lambda eng: MeshRouter(
                mesh, seed=seed, node_capacity=cap, engine=eng
            ),
            np.arange(n),
            dests,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cap", [1, 2])
    def test_linear_array_single_hub(self, seed, cap):
        rng = np.random.default_rng(seed)
        arr = LinearArray(24)
        hub = int(rng.integers(arr.n))
        stats = _run_both(
            lambda eng: GreedyRouter(arr, node_capacity=cap, engine=eng),
            np.arange(arr.n),
            [hub] * arr.n,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cap", [3, 4])
    def test_linear_array_two_hubs(self, seed, cap):
        rng = np.random.default_rng(seed)
        arr = LinearArray(24)
        hubs = rng.choice(arr.n, size=2, replace=False)
        dests = rng.choice(hubs, size=arr.n)
        stats = _run_both(
            lambda eng: GreedyRouter(arr, node_capacity=cap, engine=eng),
            np.arange(arr.n),
            dests,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap

    def test_tight_caps_deadlock_detected_and_agree(self):
        """Too-tight capacity wedges crossing flows; both engines must
        raise the deadlock diagnostic with identical attached stats
        (instead of spinning to max_steps, the pre-detector behavior)."""
        rng = np.random.default_rng(1)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        with pytest.raises(DeadlockError) as fast_exc:
            GreedyMeshRouter(mesh, node_capacity=2, engine="fast").route(
                np.arange(n), dests, max_steps=500
            )
        with pytest.raises(DeadlockError) as ref_exc:
            GreedyMeshRouter(mesh, node_capacity=2, engine="reference").route(
                np.arange(n), dests, max_steps=500
            )
        fast = fast_exc.value.stats
        assert not fast.completed
        assert fast.max_node_load <= 2
        assert fast.steps < 500  # detected, not timed out
        assert_stats_equal(fast, ref_exc.value.stats)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_credit_flow_control_unwedges_tight_caps(self, seed, cap):
        """The Corollary 3.3 regime: capacities that deadlock (or would
        risk it) under plain backpressure complete under the credit
        escape protocol, keep the capacity invariant, and stay
        bit-identical across engines."""
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        stats = _run_both(
            lambda eng: GreedyMeshRouter(
                mesh, node_capacity=cap, flow_control="credit", engine=eng
            ),
            np.arange(n),
            dests,
            8000,
        )
        assert stats.completed
        assert stats.max_node_load <= cap
