"""The repo-invariant lint layer (tools/lint): rules, framework, gate.

Three tiers:

* **rule units** — each rule exercised on synthetic sources, both the
  violating and the idiomatic form (the fix patterns used in the tree
  must stay clean);
* **framework** — scoping, per-line suppressions, CLI exit codes;
* **gate** — ``run_lint(REPO_ROOT)`` returns nothing: the tree itself
  is the ultimate fixture, and this test is what CI's
  ``python -m tools.lint`` enforces.
"""

import importlib
import pkgutil
import subprocess
import sys
import textwrap

from tools.lint.framework import (
    REPO_ROOT,
    FileContext,
    Violation,
    default_rules,
    run_lint,
)
from tools.lint.rules.engine_parity import EventKindOrderRule, StatParityRule
from tools.lint.rules.hash_placement import HashPlacementRule
from tools.lint.rules.metric_names import MetricNamesRule
from tools.lint.rules.seeded_rng import SeededRngRule
from tools.lint.rules.unordered_iter import UnorderedIterRule
from tools.lint.rules.wall_clock import WallClockRule

HOT_PATH = "src/repro/routing/x.py"


def _check(rule, source: str, relpath: str = "src/repro/x.py") -> list[Violation]:
    """Run one file rule the way run_lint would (suppressions applied)."""
    ctx = FileContext(relpath, textwrap.dedent(source))
    assert rule.applies_to(relpath)
    return [v for v in rule.check(ctx) if not ctx.suppressed(v.line, v.rule)]


def _tree(tmp_path, files: dict[str, str]):
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return tmp_path


# ---------------------------------------------------------------------------
# REPRO001 seeded RNG
# ---------------------------------------------------------------------------

class TestSeededRngRule:
    def test_stdlib_random_import_flagged(self):
        assert _check(SeededRngRule(), "import random\n")
        assert _check(SeededRngRule(), "from random import randint\n")

    def test_legacy_numpy_global_api_flagged(self):
        vs = _check(SeededRngRule(), "import numpy as np\nx = np.random.rand(3)\n")
        assert len(vs) == 1 and "np.random.rand" in vs[0].message

    def test_unseeded_default_rng_flagged(self):
        assert _check(SeededRngRule(), "import numpy as np\nr = np.random.default_rng()\n")
        src = "from numpy.random import default_rng\nr = default_rng()\n"
        assert _check(SeededRngRule(), src)

    def test_seeded_default_rng_clean(self):
        clean = """
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng(42)
            b = np.random.default_rng(None)  # explicit opt-in to entropy
            c = default_rng(seed)
            d = np.random.PCG64(7)
        """
        assert _check(SeededRngRule(), clean) == []

    def test_out_of_scope_path_skipped(self):
        assert not SeededRngRule().applies_to("benchmarks/bench_engine.py")


# ---------------------------------------------------------------------------
# REPRO002 wall clock
# ---------------------------------------------------------------------------

class TestWallClockRule:
    def test_time_module_calls_flagged(self):
        for call in ("time.time()", "time.perf_counter()", "time.sleep(1)"):
            assert _check(WallClockRule(), f"import time\nx = {call}\n"), call

    def test_from_import_alias_flagged(self):
        src = "from time import perf_counter as pc\nx = pc()\n"
        vs = _check(WallClockRule(), src)
        assert len(vs) == 1 and "perf_counter" in vs[0].message

    def test_datetime_now_flagged(self):
        src = "import datetime\nx = datetime.datetime.now()\n"
        assert _check(WallClockRule(), src)

    def test_unrelated_methods_clean(self):
        clean = """
            import time

            class Clock:
                def time(self):
                    return self.steps

            c = Clock()
            x = c.time()          # our virtual clock, not the wall clock
            y = time.strftime     # attribute access, not a clock call
        """
        assert _check(WallClockRule(), clean) == []

    def test_obs_clock_is_the_single_exemption(self):
        """The observability chokepoint may read the wall clock; the
        same source anywhere else in src/repro still fails."""
        rule = WallClockRule()
        src = "import time\nx = time.perf_counter()\n"
        assert not rule.applies_to("src/repro/obs/clock.py")
        for elsewhere in (
            "src/repro/obs/tracer.py",  # even the rest of obs/
            "src/repro/routing/engine.py",
            "src/repro/traffic/driver.py",
        ):
            assert _check(rule, src, elsewhere), elsewhere

    def test_real_obs_clock_module_would_violate_elsewhere(self):
        """The actual clock.py source is only clean because of the
        path exemption, proving the exemption is load-bearing."""
        source = (REPO_ROOT / "src/repro/obs/clock.py").read_text()
        ctx = FileContext("src/repro/routing/x.py", source)
        assert list(WallClockRule().check(ctx))


# ---------------------------------------------------------------------------
# REPRO003 unordered iteration
# ---------------------------------------------------------------------------

class TestUnorderedIterRule:
    def test_for_over_set_literal_flagged(self):
        src = "for x in {1, 2}:\n    pass\n"
        vs = _check(UnorderedIterRule(), src, HOT_PATH)
        assert len(vs) == 1 and "for loop" in vs[0].message

    def test_sorted_iteration_is_the_clean_form(self):
        src = """
            s = {1, 2, 3}
            for x in sorted(s):
                pass
            n = len(s)
            m = max(s)
            ok = 7 in s
            total = sum(v for v in s)
        """
        assert _check(UnorderedIterRule(), src, HOT_PATH) == []

    def test_annotation_marks_a_parameter_as_set(self):
        src = """
            def f(dead: frozenset[int]) -> None:
                for m in dead:
                    pass
        """
        assert _check(UnorderedIterRule(), src, HOT_PATH)

    def test_set_algebra_propagates(self):
        src = """
            a = {1}
            b = a | {2}
            for x in b - a:
                pass
        """
        assert _check(UnorderedIterRule(), src, HOT_PATH)

    def test_order_sensitive_calls_flagged(self):
        src = "s = set()\nitems = list(s)\n"
        assert _check(UnorderedIterRule(), src, HOT_PATH)
        src = "s = set()\nlabel = ','.join(s)\n"
        assert _check(UnorderedIterRule(), src, HOT_PATH)

    def test_comprehension_over_set_flagged(self):
        src = "s = {1, 2}\nout = [x + 1 for x in s]\n"
        vs = _check(UnorderedIterRule(), src, HOT_PATH)
        assert len(vs) == 1 and "comprehension" in vs[0].message

    def test_parts_at_direct_unpack(self):
        """The fast_engine fix pattern: parts_at's first slot is a set."""
        src = """
            def f(view, t):
                fstatic, fextra = view.parts_at(t)
                for u, w in fstatic:
                    pass
        """
        vs = _check(UnorderedIterRule(), src, HOT_PATH)
        assert len(vs) == 1

    def test_parts_at_two_step_unpack(self):
        """...and the two-step binding (parts = ...; a, b = parts)."""
        src = """
            def f(view, t):
                parts = view.parts_at(t)
                fstatic, fextra = parts
                for u, w in fstatic:
                    pass
                for u, w in fextra:    # slot 1 is a tuple, not a set
                    pass
        """
        vs = _check(UnorderedIterRule(), src, HOT_PATH)
        assert len(vs) == 1 and vs[0].line == 5

    def test_sorted_parts_at_unpack_clean(self):
        src = """
            def f(view, t):
                fstatic, fextra = view.parts_at(t)
                for u, w in sorted(fstatic):
                    pass
        """
        assert _check(UnorderedIterRule(), src, HOT_PATH) == []

    def test_scope_is_hot_paths_only(self):
        rule = UnorderedIterRule()
        assert rule.applies_to("src/repro/emulation/ranade.py")
        assert rule.applies_to("src/repro/faults/runtime.py")
        assert not rule.applies_to("src/repro/pram/machine.py")
        assert not rule.applies_to("src/repro/analysis/races.py")


# ---------------------------------------------------------------------------
# REPRO004 stat parity (cross-file)
# ---------------------------------------------------------------------------

_METRICS = """
    class RoutingStats:
        steps: int
        delivered: int
        combines: int

    def collect_stats(packets, *, steps, delivered, combines=0):
        pass
"""

_ENGINE_OK = """
    def run(packets):
        return collect_stats(packets, steps=1, delivered=2, combines=3)
"""


class TestStatParityRule:
    def _lint(self, tmp_path, fast_src, engine_src=_ENGINE_OK):
        root = _tree(
            tmp_path,
            {
                "src/repro/routing/metrics.py": _METRICS,
                "src/repro/routing/engine.py": engine_src,
                "src/repro/routing/fast_engine.py": fast_src,
            },
        )
        return run_lint(root, rules=[StatParityRule()])

    def test_matching_engines_clean(self, tmp_path):
        assert self._lint(tmp_path, _ENGINE_OK) == []

    def test_field_set_in_one_engine_only(self, tmp_path):
        drifted = """
            def run(packets):
                return collect_stats(packets, steps=1, delivered=2)
        """
        vs = self._lint(tmp_path, drifted)
        assert len(vs) == 1
        assert vs[0].path == "src/repro/routing/fast_engine.py"
        assert "combines" in vs[0].message

    def test_unknown_field_flagged(self, tmp_path):
        bad = """
            def run(packets):
                return collect_stats(
                    packets, steps=1, delivered=2, combines=3, warp=9
                )
        """
        vs = self._lint(tmp_path, bad)
        assert any("warp" in v.message for v in vs)

    def test_inconsistent_sites_within_one_file(self, tmp_path):
        split = """
            def run(packets):
                if packets:
                    return collect_stats(packets, steps=1, delivered=2, combines=3)
                return collect_stats(packets, steps=0, delivered=0)
        """
        vs = self._lint(tmp_path, split)
        assert any("sibling sites" in v.message for v in vs)

    def test_partial_invocation_is_silent(self, tmp_path):
        root = _tree(tmp_path, {"src/repro/routing/engine.py": _ENGINE_OK})
        assert run_lint(root, rules=[StatParityRule()]) == []


# ---------------------------------------------------------------------------
# REPRO005 event-kind order (cross-file)
# ---------------------------------------------------------------------------

_PLAN = """
    EVENT_KINDS = ("kill_module", "revive_module", "link_down", "link_up")
"""


class TestEventKindOrderRule:
    def _lint(self, tmp_path, files):
        files.setdefault("src/repro/faults/plan.py", _PLAN)
        return run_lint(_tree(tmp_path, files), rules=[EventKindOrderRule()])

    def test_known_vocabulary_clean(self, tmp_path):
        src = """
            from repro.faults.plan import EVENT_KINDS

            def apply(events):
                for e in sorted(events, key=lambda e: EVENT_KINDS.index(e.kind)):
                    if e.kind == "kill_module":
                        pass
                    elif e.kind in ("link_down", "link_up"):
                        pass
        """
        assert self._lint(tmp_path, {"src/repro/faults/runtime.py": src}) == []

    def test_typo_in_kind_comparison_flagged(self, tmp_path):
        src = """
            def apply(e):
                return e.kind == "kill_moduel"
        """
        vs = self._lint(tmp_path, {"src/repro/faults/runtime.py": src})
        assert len(vs) == 1 and "kill_moduel" in vs[0].message

    def test_ad_hoc_kind_sort_flagged(self, tmp_path):
        src = """
            def apply(events):
                return sorted(events, key=lambda e: e.kind)
        """
        vs = self._lint(tmp_path, {"src/repro/faults/runtime.py": src})
        assert len(vs) == 1 and "EVENT_KINDS" in vs[0].message

    def test_duplicate_kind_in_tuple_flagged(self, tmp_path):
        plan = 'EVENT_KINDS = ("kill_module", "kill_module")\n'
        vs = self._lint(tmp_path, {"src/repro/faults/plan.py": plan})
        assert any("duplicate" in v.message for v in vs)

    def test_non_tuple_event_kinds_flagged(self, tmp_path):
        plan = 'EVENT_KINDS = ["kill_module", "revive_module"]\n'
        vs = self._lint(tmp_path, {"src/repro/faults/plan.py": plan})
        assert any("tuple literal" in v.message for v in vs)


# ---------------------------------------------------------------------------
# REPRO006 hash placement
# ---------------------------------------------------------------------------

class TestHashPlacementRule:
    def test_direct_construction_flagged(self):
        src = """
            from repro.hashing.family import PolynomialHash
            h = PolynomialHash([1, 2, 3], 101, 8)
        """
        vs = _check(HashPlacementRule(), src, "src/repro/emulation/x.py")
        assert len(vs) == 1 and "HashFamily" in vs[0].message

    def test_dotted_construction_flagged(self):
        src = """
            from repro.hashing import family
            h = family.PolynomialHash([1], 7, 2)
        """
        assert _check(HashPlacementRule(), src, "src/repro/emulation/x.py")

    def test_family_sample_is_the_clean_form(self):
        src = """
            from repro.hashing.family import HashFamily
            h = HashFamily(1024, 8, 4).sample(seed)
        """
        assert _check(HashPlacementRule(), src, "src/repro/emulation/x.py") == []

    def test_placement_layers_are_exempt(self):
        src = "h = PolynomialHash([1], 7, 2)\n"
        for rel in (
            "src/repro/hashing/family.py",
            "src/repro/sharding/placement.py",
        ):
            assert _check(HashPlacementRule(), src, rel) == []

    def test_pragma_escape_hatch(self):
        src = (
            "h = PolynomialHash([1], 7, 2)"
            "  # lint: ok REPRO006 adversarial-coefficients test\n"
        )
        assert _check(HashPlacementRule(), src, "src/repro/emulation/x.py") == []

    def test_non_constructor_references_clean(self):
        src = """
            from repro.hashing.family import PolynomialHash

            def f(h: PolynomialHash) -> int:
                return h(3)
        """
        assert _check(HashPlacementRule(), src, "src/repro/emulation/x.py") == []


# ---------------------------------------------------------------------------
# REPRO007 metric names
# ---------------------------------------------------------------------------

class TestMetricNamesRule:
    def _lint(self, tmp_path, files):
        return run_lint(_tree(tmp_path, files), rules=[MetricNamesRule()])

    def test_snake_case_names_clean(self, tmp_path):
        src = """
            def serve(obs, reg):
                obs.count("epochs_total")
                obs.gauge("backlog_requests", 3)
                reg.histogram("step_total_steps", 12, network="mesh")
        """
        assert self._lint(tmp_path, {"src/repro/traffic/x.py": src}) == []

    def test_bad_casing_flagged(self, tmp_path):
        src = """
            def serve(obs):
                obs.count("epochsTotal")
                obs.gauge("backlog-requests", 3)
                obs.observe("step.time", 1.0)
        """
        vs = self._lint(tmp_path, {"src/repro/traffic/x.py": src})
        assert len(vs) == 3
        assert all("snake_case" in v.message for v in vs)

    def test_kind_shadowing_across_files_flagged(self, tmp_path):
        a = 'def f(obs):\n    obs.count("backlog", 1)\n'
        b = 'def g(obs):\n    obs.gauge("backlog", 2)\n'
        vs = self._lint(
            tmp_path,
            {"src/repro/a.py": a, "src/repro/b.py": b},
        )
        assert len(vs) == 1
        v = vs[0]
        assert "one name, one kind" in v.message and "src/repro/a.py" in v.message

    def test_same_kind_reuse_is_fine(self, tmp_path):
        a = 'def f(obs):\n    obs.count("steps_total", 1)\n'
        b = 'def g(reg):\n    reg.counter("steps_total", 2)\n'
        assert self._lint(
            tmp_path, {"src/repro/a.py": a, "src/repro/b.py": b}
        ) == []

    def test_dynamic_names_out_of_scope(self, tmp_path):
        src = """
            def serve(obs, name):
                obs.count(name)
                obs.gauge(f"x_{name}", 1)
        """
        assert self._lint(tmp_path, {"src/repro/x.py": src}) == []


# ---------------------------------------------------------------------------
# framework: suppressions, scoping, CLI
# ---------------------------------------------------------------------------

class TestFramework:
    def test_suppression_pragma_silences_one_line_one_rule(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "src/repro/util/shim.py": (
                    "import random  # lint: ok REPRO001 vendored shim\n"
                    "import time\n"
                    "x = time.time()\n"
                )
            },
        )
        vs = run_lint(root, rules=[SeededRngRule(), WallClockRule()])
        # the pragma kills the RNG finding but not the wall-clock one
        assert [v.rule for v in vs] == ["REPRO002"]

    def test_violation_format(self):
        v = Violation("REPRO001", "src/repro/x.py", 3, 4, "nope")
        assert v.format() == "src/repro/x.py:3:4: REPRO001 nope"

    def test_default_rules_catalog(self):
        ids = [r.id for r in default_rules()]
        assert ids == [
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
            "REPRO007",
        ]

    def test_cli_clean_tree_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lint clean" in proc.stdout

    def test_cli_flags_violations_with_exit_one(self, tmp_path):
        root = _tree(tmp_path, {"src/repro/bad.py": "import random\n"})
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--root", str(root)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "REPRO001" in proc.stdout

    def test_cli_unknown_rule_is_usage_error(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--rule", "REPRO999"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.lint", "--list-rules"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rid in (
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
        ):
            assert rid in proc.stdout


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------

class TestTreeClean:
    def test_repo_tree_is_lint_clean(self):
        vs = run_lint(REPO_ROOT)
        assert vs == [], "\n".join(v.format() for v in vs)

    def test_every_dunder_all_export_resolves(self):
        """F822 proxy: every __all__ name in every repro module exists
        (also guards the analysis package's re-export surface)."""
        import repro

        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            mod = importlib.import_module(info.name)
            for name in getattr(mod, "__all__", ()):
                assert hasattr(mod, name), (
                    f"{info.name}.__all__ lists {name!r} but the module "
                    "does not define it"
                )
