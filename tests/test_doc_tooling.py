"""Doc-snippet tooling (tools/run_doc_snippets): extraction + coverage audit.

The docs promise runnable ```python fences, and CI keeps the promise by
executing them.  The weak point used to be *discovery*: a new docs page
outside the executed glob would silently skip execution.  These tests
pin the audit that closes the gap — a no-args run must fail when any
README/docs markdown file containing fences is absent from the
executed set.
"""

import textwrap

import pytest

import tools.run_doc_snippets as rds


def _write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


FENCED = """
    # Page

    ```python
    x = 1 + 1
    assert x == 2
    ```
"""

FENCELESS = """
    # Prose only

    ```text
    not python
    ```
"""


@pytest.fixture
def doc_tree(tmp_path, monkeypatch):
    monkeypatch.setattr(rds, "REPO_ROOT", tmp_path)
    # main() chdirs into REPO_ROOT; make pytest restore the cwd after
    monkeypatch.chdir(tmp_path)
    _write(tmp_path, "README.md", FENCED)
    _write(tmp_path, "docs/a.md", FENCED)
    _write(tmp_path, "docs/b.md", FENCELESS)
    return tmp_path


class TestExtractBlocks:
    def test_finds_python_fences_with_line_numbers(self):
        blocks = rds.extract_blocks(textwrap.dedent(FENCED))
        assert len(blocks) == 1
        start, source = blocks[0]
        assert "assert x == 2" in source

    def test_ignores_other_fences(self):
        assert rds.extract_blocks(textwrap.dedent(FENCELESS)) == []

    def test_unclosed_fence_raises(self):
        with pytest.raises(ValueError, match="unclosed"):
            rds.extract_blocks("```python\nx = 1\n")


class TestDiscovery:
    def test_discovery_is_recursive(self, doc_tree):
        nested = _write(doc_tree, "docs/guides/deep.md", FENCED)
        assert nested in rds.discover_documented()

    def test_coverage_flags_a_missed_fenced_page(self, doc_tree, capsys):
        nested = _write(doc_tree, "docs/guides/deep.md", FENCED)
        executed = set(rds.discover_documented()) - {nested}
        assert rds.coverage_failures(executed) == 1
        assert "docs/guides/deep.md" in capsys.readouterr().out

    def test_fenceless_pages_need_no_execution(self, doc_tree):
        executed = {doc_tree / "README.md", doc_tree / "docs/a.md"}
        assert rds.coverage_failures(executed) == 0


class TestMain:
    def test_full_run_is_green_and_audited(self, doc_tree):
        assert rds.main([]) == 0

    def test_failing_snippet_fails_the_run(self, doc_tree):
        _write(doc_tree, "docs/broken.md", """
            ```python
            raise RuntimeError("doc rot")
            ```
        """)
        assert rds.main([]) == 1

    def test_explicit_files_skip_the_audit(self, doc_tree):
        # a partial run names its files; pages left out (even fenced
        # ones) are not an error there
        _write(doc_tree, "docs/guides/deep.md", FENCED)
        assert rds.main([str(doc_tree / "docs" / "a.md")]) == 0
