"""Tests for the analysis module: delay bounds, queue-line lemma, claims."""

import math

import pytest

from repro.analysis import (
    LINEAR_ARRAY_CLAIM,
    MESH_EMULATION_CLAIM,
    MESH_ROUTING_CLAIM,
    Claim,
    fitted_constant,
    flatness,
    is_nonrepeating,
    karlin_upfal_phase_ratio,
    leveled_routing_claim,
    per_level_delay_pgf_coeff,
    queue_line_check,
    ranade_mesh_constant,
    routing_time_bound,
    star_diameter,
    star_nodes,
    sublogarithmic_gap,
    total_delay_tail,
)
from repro.routing import SynchronousEngine, make_packets
from repro.topology import LinearArray


class TestDelayBounds:
    def test_pgf_coeff_decreasing_in_p(self):
        vals = [per_level_delay_pgf_coeff(8, 8, p) for p in range(6)]
        assert vals[0] == 1.0
        assert all(a >= b for a, b in zip(vals[2:], vals[3:]))

    def test_pgf_coeff_rejects_negative(self):
        with pytest.raises(ValueError):
            per_level_delay_pgf_coeff(4, 4, -1)

    def test_total_delay_tail_trivial_below_mean(self):
        assert total_delay_tail(8, 8, 2) == 1.0

    def test_total_delay_tail_geometric_decay(self):
        # ℓ = d (the paper's regime): s = ℓ; tail decays past s.
        l = 10
        tails = [total_delay_tail(l, l, delta) for delta in (20, 40, 80)]
        assert tails[0] > tails[1] > tails[2]
        assert tails[2] < 1e-10

    def test_routing_time_bound_linear_in_levels(self):
        t1 = routing_time_bound(6, 6, failure_prob=0.01)
        t2 = routing_time_bound(12, 12, failure_prob=0.01)
        assert t1 < t2 < 6 * 2 * 12  # Õ(ℓ) with modest constant

    def test_routing_time_bound_validates(self):
        with pytest.raises(ValueError):
            routing_time_bound(4, 4, failure_prob=0.0)


class TestQueueLineLemma:
    def _run_line(self, origins, dests):
        array = LinearArray(12)

        def next_hop(p):
            if p.node == p.dest:
                return None
            return array.route_next(p.node, p.dest)

        packets = make_packets(origins, dests)
        engine = SynchronousEngine(track_paths=True)
        stats = engine.run(packets, next_hop, max_steps=200)
        assert stats.completed
        return packets

    def test_lemma_holds_on_shared_path(self):
        packets = self._run_line([0, 0, 0], [8, 8, 8])
        assert queue_line_check(packets) == []

    def test_lemma_holds_on_disjoint_paths(self):
        packets = self._run_line([0, 6], [4, 11])
        assert queue_line_check(packets) == []
        # disjoint paths, zero delay
        assert all(p.delay == 0 for p in packets)

    def test_nonrepeating_on_greedy_line(self):
        packets = self._run_line([0, 2, 4], [9, 10, 11])
        assert is_nonrepeating(packets)

    def test_violation_detection(self):
        # Fabricate a delivered packet with delay exceeding overlaps.
        packets = make_packets([0], [3])
        p = packets[0]
        p.trace = [0, 1, 2, 3]
        p.hops = 3
        p.arrived_at = 50  # absurd delay with no overlapping packets
        violations = queue_line_check(packets)
        assert len(violations) == 1
        assert violations[0].delay == 47


class TestClaims:
    def test_mesh_claims_bound_values(self):
        assert MESH_ROUTING_CLAIM.bound(16) > 32
        assert MESH_EMULATION_CLAIM.holds(4 * 16 + 5, 16)
        assert not MESH_EMULATION_CLAIM.holds(12 * 16, 16)

    def test_linear_claim(self):
        assert LINEAR_ARRAY_CLAIM.holds(40, 38)

    def test_leveled_claim_factory(self):
        c = leveled_routing_claim(5.0)
        assert c.holds(9 * 2, 4)  # 18 <= 5*4? no -> actually 20; holds
        assert isinstance(c, Claim)

    def test_constants(self):
        assert ranade_mesh_constant() == 100.0
        assert karlin_upfal_phase_ratio() == 2.0

    def test_star_facts(self):
        assert star_diameter(7) == 9
        assert star_nodes(7) == 5040

    def test_sublogarithmic_gap_shrinks(self):
        g5 = sublogarithmic_gap(5, "star")
        g9 = sublogarithmic_gap(9, "star")
        assert g9 < g5 < 1.0
        assert sublogarithmic_gap(4, "hypercube") == 1.0
        assert sublogarithmic_gap(4, "shuffle") < 1.0
        with pytest.raises(ValueError):
            sublogarithmic_gap(4, "torus")

    def test_flatness(self):
        assert flatness([2.0, 2.1, 2.05])
        assert not flatness([2.0, 3.0, 4.5])
        with pytest.raises(ValueError):
            flatness([0.0, 1.0])

    def test_fitted_constant(self):
        scales = [8, 16, 24]
        times = [4 * s + 7 for s in scales]
        assert math.isclose(fitted_constant(scales, times), 4.0, abs_tol=1e-9)
