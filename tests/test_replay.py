"""End-to-end integration: PRAM programs replayed on network emulators.

The strongest correctness statement in the reproduction: the same program
leaves identical memory on the abstract PRAM and on every emulating
network, while the emulation cost obeys the theorems.
"""

import pytest

from repro.emulation import LeveledEmulator, MeshEmulator, replay_program
from repro.pram import (
    boolean_or,
    broadcast,
    histogram,
    list_ranking,
    odd_even_sort,
    parallel_sum,
    prefix_sum,
)
from repro.topology import DAryButterflyLeveled, Mesh2D, ShuffleLeveled, StarLogicalLeveled


def leveled_emulator(net, m, *, seed=0, mode="crcw"):
    return LeveledEmulator(net, address_space=m, mode=mode, seed=seed)


class TestReplayOnLeveledNetworks:
    def test_parallel_sum_on_butterfly(self):
        spec = parallel_sum(list(range(16)))
        net = DAryButterflyLeveled(2, 4)  # 16 processors
        result = replay_program(spec, leveled_emulator(net, spec.memory_size, seed=1))
        assert result.memory_matches
        assert result.report.pram_steps == spec.run().steps_executed
        # Theorem 2.5/2.6 shape on every step
        assert max(result.report.normalized_step_times()) <= 12

    def test_prefix_sum_on_star_logical(self):
        spec = prefix_sum(list(range(1, 17)))  # 16 procs, 32 cells
        net = StarLogicalLeveled(4)  # 24 processors
        emu = LeveledEmulator(net, address_space=spec.memory_size, mode="crcw", intermediate="node", seed=2)
        result = replay_program(spec, emu)
        assert result.memory_matches

    def test_boolean_or_on_shuffle(self):
        spec = boolean_or([0] * 20 + [1] * 7)  # 27 procs = 3-way shuffle
        net = ShuffleLeveled(3, 3)
        result = replay_program(spec, leveled_emulator(net, spec.memory_size, seed=3))
        assert result.memory_matches
        assert result.report.pram_steps == 2  # O(1) CRCW trick survives emulation

    def test_histogram_with_combining_writes(self):
        spec = histogram([0, 1, 1, 2, 2, 2, 3, 0] * 2, 4)
        net = DAryButterflyLeveled(2, 4)
        result = replay_program(spec, leveled_emulator(net, spec.memory_size, seed=4))
        assert result.memory_matches
        assert result.report.total_combines >= 0

    def test_broadcast_on_butterfly(self):
        spec = broadcast(16, value="hi")
        net = DAryButterflyLeveled(2, 4)
        result = replay_program(spec, leveled_emulator(net, spec.memory_size, seed=5))
        assert result.memory_matches


class TestReplayOnMesh:
    def test_odd_even_sort_on_mesh(self):
        spec = odd_even_sort([5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 11, 10, 15, 14, 13, 12])
        emu = MeshEmulator(Mesh2D.square(4), address_space=spec.memory_size, mode="crcw", seed=6)
        result = replay_program(spec, emu)
        assert result.memory_matches
        # final memory is the sorted array
        assert emu.memory.snapshot(0, 16) == sorted(range(16))

    def test_list_ranking_on_mesh(self):
        spec = list_ranking([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 15])
        emu = MeshEmulator(Mesh2D.square(4), address_space=spec.memory_size, mode="crcw", seed=7)
        result = replay_program(spec, emu)
        assert result.memory_matches

    def test_mesh_slowdown_within_bound(self):
        spec = parallel_sum(list(range(16)))
        emu = MeshEmulator(Mesh2D.square(4), address_space=spec.memory_size, mode="crcw", seed=8)
        result = replay_program(spec, emu)
        assert result.memory_matches
        # Theorem 3.2 flavor: each step within a liberal multiple of n
        assert result.report.max_step_time <= 14 * 4


class TestReplayValidation:
    def test_rejects_undersized_network(self):
        spec = parallel_sum(list(range(64)))
        net = DAryButterflyLeveled(2, 4)  # only 16 processors
        with pytest.raises(ValueError):
            replay_program(spec, leveled_emulator(net, spec.memory_size))

    def test_rejects_undersized_memory(self):
        spec = prefix_sum(list(range(16)))  # needs 32 cells
        net = DAryButterflyLeveled(2, 4)
        with pytest.raises(ValueError):
            replay_program(spec, leveled_emulator(net, 16))

    def test_rejects_erew_emulator_for_concurrent_program(self):
        spec = boolean_or([1, 0, 1, 0])
        net = DAryButterflyLeveled(2, 2)
        emu = LeveledEmulator(net, address_space=spec.memory_size, mode="erew", seed=9)
        with pytest.raises(ValueError):
            replay_program(spec, emu)

    def test_slowdown_property(self):
        spec = broadcast(8)
        net = DAryButterflyLeveled(2, 3)
        result = replay_program(spec, leveled_emulator(net, spec.memory_size, seed=10))
        assert result.slowdown > 0
        assert result.cells_checked == spec.memory_size
