"""Tests for the d-way shuffle network (§2.3.5, Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import DWayShuffle


class TestShuffleStructure:
    def test_counts(self):
        s = DWayShuffle(3, 4)
        assert s.num_nodes == 81
        assert s.degree == 3
        assert s.diameter == 4

    def test_n_way_constructor(self):
        s = DWayShuffle.n_way(3)
        assert s.d == 3 and s.n == 3
        assert s.num_nodes == 27

    def test_label_roundtrip(self):
        s = DWayShuffle(4, 3)
        for v in range(s.num_nodes):
            assert s.node_id(s.label(v)) == v

    def test_label_msb_first(self):
        s = DWayShuffle(10, 3)
        assert s.label(123) == (1, 2, 3)

    def test_node_id_validates_digits(self):
        s = DWayShuffle(3, 2)
        with pytest.raises(ValueError):
            s.node_id((3, 0))
        with pytest.raises(ValueError):
            s.node_id((0, 0, 0))

    def test_shuffle_edges_match_definition(self):
        # Node d_n..d_1 -> l d_n..d_2 for every l.
        s = DWayShuffle(3, 3)
        v = s.node_id((2, 1, 0))
        expected = {s.node_id((l, 2, 1)) for l in range(3)}
        assert set(s.shuffle_neighbors(v)) == expected

    def test_figure4_two_way_shuffle(self):
        # Figure 4: n = 2 (2-way shuffle on 4 nodes).
        s = DWayShuffle.n_way(2)
        assert s.num_nodes == 4
        # 00 -> 00, 10 ; 01 -> 00, 10 ; 10 -> 01, 11 ; 11 -> 01, 11
        assert set(s.shuffle_neighbors(0b00)) == {0b00, 0b10}
        assert set(s.shuffle_neighbors(0b01)) == {0b00, 0b10}
        assert set(s.shuffle_neighbors(0b10)) == {0b01, 0b11}
        assert set(s.shuffle_neighbors(0b11)) == {0b01, 0b11}

    def test_neighbors_bidirectional_closure(self):
        s = DWayShuffle(3, 3)
        for v in range(s.num_nodes):
            for w in s.neighbors(v):
                assert v in s.neighbors(w)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DWayShuffle(1, 3)
        with pytest.raises(ValueError):
            DWayShuffle(3, 0)


class TestShuffleUniquePath:
    def test_unique_path_length_and_endpoint(self):
        s = DWayShuffle(3, 4)
        path = s.unique_path(5, 77)
        assert len(path) == 5
        assert path[0] == 5 and path[-1] == 77
        for a, b in zip(path, path[1:]):
            assert b in s.shuffle_neighbors(a)

    def test_unique_path_is_unique(self):
        # Exactly one n-hop forward walk between every ordered pair.
        s = DWayShuffle(2, 3)
        for src in range(s.num_nodes):
            # count length-3 forward walks ending at each node
            counts = {src: 1}
            for _ in range(3):
                nxt: dict[int, int] = {}
                for node, c in counts.items():
                    for w in s.shuffle_neighbors(node):
                        nxt[w] = nxt.get(w, 0) + c
                counts = nxt
            assert all(c == 1 for c in counts.values())
            assert len(counts) == s.num_nodes

    def test_hop_inserts_at_front(self):
        s = DWayShuffle(3, 3)
        v = s.node_id((0, 1, 2))
        assert s.label(s.hop(v, 2)) == (2, 0, 1)

    def test_hop_validates_digit(self):
        s = DWayShuffle(3, 3)
        with pytest.raises(ValueError):
            s.hop(0, 3)

    def test_unique_path_next_range(self):
        s = DWayShuffle(3, 3)
        with pytest.raises(ValueError):
            s.unique_path_next(0, 1, 3)


class TestShuffleDistance:
    def test_self_distance(self):
        s = DWayShuffle(3, 3)
        assert s.distance(13, 13) == 0

    def test_distance_overlap_shortcut(self):
        s = DWayShuffle(2, 4)
        # u = 0b1010; v with low 3 digits = u's high 3 digits (101): one hop.
        u = s.node_id((1, 0, 1, 0))
        v = s.node_id((1, 1, 0, 1))
        assert s.distance(u, v) == 1

    def test_distance_at_most_n(self):
        s = DWayShuffle(3, 3)
        for u in (0, 13, 26):
            for v in (0, 7, 25):
                assert 0 <= s.distance(u, v) <= 3

    def test_greedy_route_reaches_dest_in_distance_steps(self):
        s = DWayShuffle(3, 4)
        for u, v in [(0, 80), (5, 5), (17, 33), (80, 0)]:
            d = s.distance(u, v)
            cur = u
            for _ in range(d):
                cur = s.route_next(cur, v)
            assert cur == v

    @given(
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_route_next_decreases_distance(self, u, v):
        s = DWayShuffle(3, 4)
        if u == v:
            assert s.route_next(u, v) == u
        else:
            w = s.route_next(u, v)
            assert s.distance(w, v) == s.distance(u, v) - 1
