"""Tests for mesh emulation (Theorems 3.2-3.3) and the baselines."""

import pytest

from repro.emulation import (
    KarlinUpfalMeshEmulator,
    LeveledEmulator,
    MeshEmulator,
    RanadeEmulator,
    locality_slice_rows,
)
from repro.pram import (
    ReadRequest,
    StepTrace,
    WritePolicy,
    WriteRequest,
    local_step_for_mesh,
    permutation_step,
    random_trace,
)
from repro.topology import Mesh2D


class TestMeshEmulatorBasics:
    def test_read_write_roundtrip(self):
        emu = MeshEmulator(Mesh2D.square(4), address_space=64, seed=1)
        emu.emulate_step(StepTrace(writes=[WriteRequest(0, 9, "v")]))
        assert emu.memory.read(9) == "v"
        cost = emu.emulate_step(StepTrace(reads=[ReadRequest(7, 9)]))
        assert cost.reply_steps > 0

    def test_full_permutation_step_time_shape(self):
        # Theorem 3.2: 4n + o(n).  At small n the o(n) term is visible, so
        # assert a generous multiple; the benchmark tracks the trend.
        n = 12
        emu = MeshEmulator(Mesh2D.square(n), address_space=4 * n * n, seed=2)
        step = permutation_step(n * n, 4 * n * n, seed=3)
        cost = emu.emulate_step(step)
        assert cost.total_steps <= 8 * n
        assert cost.request_steps <= 4.5 * n  # each phase 2n + o(n)

    def test_erew_rejects_concurrent(self):
        emu = MeshEmulator(Mesh2D.square(4), address_space=32, seed=4)
        step = StepTrace(reads=[ReadRequest(0, 5), ReadRequest(1, 5)])
        with pytest.raises(ValueError):
            emu.emulate_step(step)

    def test_crcw_hotspot_combines(self):
        n = 6
        emu = MeshEmulator(
            Mesh2D.square(n), address_space=64, mode="crcw", seed=5
        )
        emu.memory.write(3, "hot")
        step = StepTrace(reads=[ReadRequest(pid, 3) for pid in range(n * n)])
        cost = emu.emulate_step(step)
        assert cost.combines > 0
        assert cost.total_steps < n * n  # combining beats serialization

    def test_crcw_combining_write(self):
        emu = MeshEmulator(
            Mesh2D.square(4),
            address_space=32,
            mode="crcw",
            write_policy=WritePolicy.COMBINE,
            combine_op="sum",
            seed=6,
        )
        step = StepTrace(writes=[WriteRequest(pid, 2, 1) for pid in range(8)])
        emu.emulate_step(step)
        assert emu.memory.read(2) == 8

    def test_trace_report(self):
        n = 6
        emu = MeshEmulator(Mesh2D.square(n), address_space=128, seed=7)
        trace = random_trace(n * n, 128, 3, seed=8)
        report = emu.emulate_trace(trace)
        assert report.pram_steps == 3
        assert report.scale == n

    def test_validation_bounds(self):
        emu = MeshEmulator(Mesh2D.square(3), address_space=16, seed=9)
        with pytest.raises(ValueError):
            emu.emulate_step(StepTrace(reads=[ReadRequest(99, 0)]))
        with pytest.raises(ValueError):
            MeshEmulator(Mesh2D.square(3), 16, mode="qrqw")
        with pytest.raises(ValueError):
            MeshEmulator(Mesh2D.square(3), 16, placement="striped")


class TestLocality:
    def test_direct_placement_requires_small_address_space(self):
        with pytest.raises(ValueError):
            MeshEmulator(Mesh2D.square(3), address_space=100, placement="direct")

    def test_locality_slice_rows_sublinear(self):
        assert locality_slice_rows(4) >= 1
        assert locality_slice_rows(64) < 64
        # o(δ): the ratio shrinks
        assert locality_slice_rows(256) / 256 < locality_slice_rows(16) / 16

    def test_local_step_time_scales_with_delta_not_n(self):
        # Theorem 3.3: time 6δ + o(δ), independent of the mesh side n.
        n, delta = 16, 3
        emu = MeshEmulator(
            Mesh2D.square(n),
            address_space=n * n,
            placement="direct",
            slice_rows=locality_slice_rows(delta),
            seed=10,
        )
        step = local_step_for_mesh(n, delta, seed=11)
        cost = emu.emulate_step(step)
        # well below the global bound 4n = 64; within the 6δ + o(δ) claim
        assert cost.total_steps <= 6 * delta + 14

    def test_local_requests_unaffected_by_rehash_logic(self):
        n = 8
        emu = MeshEmulator(
            Mesh2D.square(n), address_space=n * n, placement="direct", seed=12
        )
        step = local_step_for_mesh(n, 2, seed=13)
        cost = emu.emulate_step(step)
        assert cost.rehashes == 0


class TestKarlinUpfalBaseline:
    def test_four_phases_roughly_double_two(self):
        n = 10
        step = permutation_step(n * n, 2 * n * n, seed=14)
        ours = MeshEmulator(Mesh2D.square(n), 2 * n * n, seed=15)
        ku = KarlinUpfalMeshEmulator(Mesh2D.square(n), 2 * n * n, seed=15)
        c_ours = ours.emulate_step(step)
        c_ku = ku.emulate_step(step)
        assert c_ku.total_steps > c_ours.total_steps
        ratio = c_ku.total_steps / c_ours.total_steps
        assert 1.3 <= ratio <= 3.5  # ≈2 with small-n noise

    def test_ku_memory_correctness(self):
        emu = KarlinUpfalMeshEmulator(Mesh2D.square(4), 32, seed=16)
        emu.emulate_step(StepTrace(writes=[WriteRequest(1, 5, "x")]))
        assert emu.memory.read(5) == "x"

    def test_ku_rejects_crcw(self):
        with pytest.raises(ValueError):
            KarlinUpfalMeshEmulator(Mesh2D.square(4), 32, mode="crcw")
        emu = KarlinUpfalMeshEmulator(Mesh2D.square(4), 32, seed=17)
        step = StepTrace(reads=[ReadRequest(0, 1), ReadRequest(1, 1)])
        with pytest.raises(ValueError):
            emu.emulate_step(step)


class TestRanadeBaseline:
    def test_single_step_completes(self):
        emu = RanadeEmulator(4, address_space=64, seed=18)  # 16 processors
        step = permutation_step(16, 64, seed=19)
        cost = emu.emulate_step(step)
        assert cost.total_steps > 0
        assert cost.requests == 16

    def test_memory_roundtrip(self):
        emu = RanadeEmulator(3, address_space=32, seed=20)
        emu.emulate_step(StepTrace(writes=[WriteRequest(2, 7, "w")]))
        assert emu.memory.read(7) == "w"

    def test_rejects_non_erew(self):
        emu = RanadeEmulator(3, address_space=32, seed=21)
        step = StepTrace(reads=[ReadRequest(0, 1), ReadRequest(1, 1)])
        with pytest.raises(ValueError):
            emu.emulate_step(step)

    def test_constant_larger_than_leveled_under_load(self):
        # E10's headline: under realistic load the Ranade machinery's
        # normalized constant far exceeds the direct algorithms' (the
        # merge is node-serialized; ours forwards on all links at once).
        import numpy as np

        from repro.topology import DAryButterflyLeveled

        k, h = 5, 6
        rows = 1 << k
        rng = np.random.default_rng(22)
        addrs = rng.choice(16 * rows, size=h * rows, replace=False)
        step = StepTrace(
            reads=[ReadRequest(i % rows, int(a)) for i, a in enumerate(addrs)]
        )
        ranade = RanadeEmulator(k, address_space=16 * rows, seed=23)
        const_ranade = ranade.emulate_step(step).total_steps / ranade.scale
        lev = LeveledEmulator(DAryButterflyLeveled(2, k), 16 * rows, seed=23)
        const_lev = lev.emulate_step(step).total_steps / lev.scale
        assert const_ranade > 1.3 * const_lev

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RanadeEmulator(0, 16)
        with pytest.raises(ValueError):
            RanadeEmulator(2, 16, buffer_size=0)


class TestCrossEmulatorConsistency:
    def test_same_program_same_memory_result(self):
        # The same write/read sequence leaves identical memory contents on
        # every emulator (they differ only in cost, never in semantics).
        steps = [
            StepTrace(writes=[WriteRequest(pid, pid, pid * 10) for pid in range(9)]),
            StepTrace(reads=[ReadRequest(pid, (pid + 1) % 9) for pid in range(9)]),
        ]
        from repro.topology import DAryButterflyLeveled

        mesh_emu = MeshEmulator(Mesh2D.square(3), 16, seed=25)
        lev_emu = LeveledEmulator(DAryButterflyLeveled(3, 2), 16, seed=25)
        for s in steps:
            mesh_emu.emulate_step(s)
            lev_emu.emulate_step(s)
        for addr in range(9):
            assert mesh_emu.memory.read(addr) == addr * 10
            assert lev_emu.memory.read(addr) == addr * 10


class TestRanadeDeterminismPin:
    """Pins the REPRO003 lint fix in ranade.py: ghost watermarks update
    over a tuple of neighbor rows, not a set, so reruns under the same
    seed are bit-identical (cost, queues, and memory)."""

    def test_rerun_bit_identical(self):
        def run():
            emu = RanadeEmulator(4, address_space=64, seed=18)
            costs = []
            for s in (1, 2):
                c = emu.emulate_step(permutation_step(16, 64, seed=s))
                costs.append((c.total_steps, c.requests, c.max_queue))
            writes = [WriteRequest(p, (p * 3) % 64, p) for p in range(16)]
            c = emu.emulate_step(StepTrace(writes=writes))
            costs.append((c.total_steps, c.requests, c.max_queue))
            mem = [emu.memory.read((p * 3) % 64) for p in range(16)]
            return costs, mem

        first, second = run(), run()
        assert first == second
        # and the writes actually landed where they should
        assert first[1] == list(range(16))
