"""Tests for repro.util: rng plumbing, primes, probability bounds, tables."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    Table,
    as_generator,
    binomial_tail,
    chernoff_upper,
    hoeffding_poisson_tail,
    is_prime,
    next_prime,
    spawn_generators,
    summarize,
)
from repro.util.primes import primes_below
from repro.util.rng import (
    random_h_relation,
    random_partial_permutation,
    random_permutation,
)
from repro.util.stats import linear_fit, percentile, poisson_tail


class TestRng:
    def test_as_generator_from_int_is_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_as_generator_passthrough(self):
        g = as_generator(1)
        assert as_generator(g) is g

    def test_spawn_generators_are_independent_and_reproducible(self):
        gens1 = spawn_generators(7, 3)
        gens2 = spawn_generators(7, 3)
        draws1 = [g.integers(0, 10**9) for g in gens1]
        draws2 = [g.integers(0, 10**9) for g in gens2]
        assert draws1 == draws2
        assert len(set(draws1)) == 3  # overwhelmingly likely distinct

    def test_spawn_from_generator(self):
        gens = spawn_generators(as_generator(5), 4)
        assert len(gens) == 4

    def test_random_permutation_is_permutation(self):
        p = random_permutation(as_generator(0), 50)
        assert sorted(p.tolist()) == list(range(50))

    def test_partial_permutation_distinctness(self):
        s, d = random_partial_permutation(as_generator(3), 20, 12)
        assert len(set(s.tolist())) == 12
        assert len(set(d.tolist())) == 12

    def test_partial_permutation_bounds(self):
        with pytest.raises(ValueError):
            random_partial_permutation(as_generator(0), 5, 6)

    def test_h_relation_respects_h(self):
        s, d = random_h_relation(as_generator(1), 30, 3)
        assert len(s) == len(d) == 90
        src_counts = np.bincount(s, minlength=30)
        dst_counts = np.bincount(d, minlength=30)
        assert src_counts.max() <= 3
        assert dst_counts.max() <= 3

    def test_h_relation_total_cap(self):
        s, d = random_h_relation(as_generator(1), 10, 4, total=25)
        assert len(s) == 25

    def test_h_relation_rejects_bad_h(self):
        with pytest.raises(ValueError):
            random_h_relation(as_generator(0), 10, 0)


class TestPrimes:
    def test_small_values(self):
        assert not is_prime(0) and not is_prime(1)
        assert is_prime(2) and is_prime(3) and not is_prime(4)

    def test_against_sieve(self):
        sieve = set(primes_below(2000))
        for n in range(2000):
            assert is_prime(n) == (n in sieve), n

    def test_large_known_primes(self):
        assert is_prime(2**31 - 1)  # Mersenne prime
        assert not is_prime(2**32 + 1)  # 641 * 6700417
        assert is_prime(1_000_000_007)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265):
            assert not is_prime(n), n

    def test_next_prime(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 2
        assert next_prime(14) == 17
        assert next_prime(1_000_000) == 1_000_003

    @given(st.integers(min_value=2, max_value=10**7))
    @settings(max_examples=30, deadline=None)
    def test_next_prime_is_prime_and_geq(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)


class TestStats:
    def test_binomial_tail_edges(self):
        assert binomial_tail(0, 10, 0.5) == 1.0
        assert binomial_tail(11, 10, 0.5) == 0.0
        assert binomial_tail(5, 10, 0.0) == 0.0
        assert binomial_tail(5, 10, 1.0) == 1.0

    def test_binomial_tail_symmetric_median(self):
        # P(X >= 5) for Bin(10, 0.5) includes the center term.
        tail = binomial_tail(5, 10, 0.5)
        assert 0.5 < tail < 0.7

    def test_binomial_tail_exact_small(self):
        # P(X >= 2), X~Bin(3, 0.5) = (3 + 1)/8
        assert math.isclose(binomial_tail(2, 3, 0.5), 0.5)

    def test_chernoff_dominates_tail(self):
        for m in range(6, 20):
            assert chernoff_upper(m, 20, 0.25) >= binomial_tail(m, 20, 0.25) - 1e-12

    def test_chernoff_below_mean_is_trivial(self):
        assert chernoff_upper(2, 20, 0.5) == 1.0

    def test_hoeffding_poisson_dominates_empirical(self):
        rng = as_generator(9)
        probs = rng.uniform(0.05, 0.3, size=40)
        m = 20
        bound = hoeffding_poisson_tail(m, probs)
        trials = 4000
        draws = rng.uniform(size=(trials, 40)) < probs
        emp = (draws.sum(axis=1) >= m).mean()
        assert bound >= emp - 0.02

    def test_poisson_tail_monotone(self):
        tails = [poisson_tail(m, 2.0) for m in range(8)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))
        assert tails[0] == 1.0

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_summarize_empty(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_percentile(self):
        assert percentile(range(101), 95) == 95.0

    def test_linear_fit_recovers_line(self):
        xs = [1, 2, 3, 4, 5]
        ys = [4 * x + 1 for x in xs]
        a, b = linear_fit(xs, ys)
        assert math.isclose(a, 4.0, abs_tol=1e-9)
        assert math.isclose(b, 1.0, abs_tol=1e-9)

    def test_linear_fit_needs_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "value"], title="demo")
        t.add_row([1, 2.0])
        t.add_row(["long-cell", 0.333333])
        out = t.render()
        assert "demo" in out
        assert "long-cell" in out
        assert "0.333" in out

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_caption(self):
        t = Table(["x"])
        t.add_row([1])
        t.set_caption("claim: x is small")
        assert "claim: x is small" in t.render()
