"""Smoke-run every ``examples/*.py`` so examples cannot rot silently.

Each example executes as its own subprocess (``PYTHONPATH=src`` is
arranged automatically for plain checkouts) in a fast mode: scripts
that support ``--quick`` get it, everything runs under a per-script
timeout, and a nonzero exit or timeout fails the run.  Exit code is the
number of failing examples.

Run:  python tools/run_examples.py [example.py ...]
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: scripts that accept a CLI fast mode; everything else is already small
QUICK_ARGS = {
    "reproduce_all.py": ["--quick"],
    "online_traffic_demo.py": ["--quick"],
    "fault_injection_demo.py": ["--quick"],
    "race_detection_demo.py": ["--quick"],
    "pram_applications_demo.py": ["--quick"],
    "observability_demo.py": ["--quick"],
}

TIMEOUT_S = 180


def run_example(path: Path) -> bool:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    cmd = [sys.executable, str(path), *QUICK_ARGS.get(path.name, [])]
    t0 = time.perf_counter()
    try:
        proc = subprocess.run(
            cmd,
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=TIMEOUT_S,
        )
    except subprocess.TimeoutExpired:
        print(f"FAIL {path.name} (timeout after {TIMEOUT_S}s)")
        return False
    elapsed = time.perf_counter() - t0
    if proc.returncode != 0:
        print(f"FAIL {path.name} (exit {proc.returncode}, {elapsed:.1f}s)")
        sys.stdout.write(proc.stdout[-2000:])
        sys.stderr.write(proc.stderr[-4000:])
        return False
    print(f"ok   {path.name} ({elapsed:.1f}s)")
    return True


def main(argv: list[str]) -> int:
    if argv:
        targets = [Path(a).resolve() for a in argv]
    else:
        targets = sorted((REPO_ROOT / "examples").glob("*.py"))
    if not targets:
        print("no examples found")
        return 1
    failures = sum(not run_example(p) for p in targets)
    print(f"\n{'FAILED' if failures else 'all green'}: "
          f"{failures} failing example(s) of {len(targets)}")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
