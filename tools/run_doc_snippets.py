"""Execute every ```python code block in README.md and docs/*.md.

The project docs promise runnable snippets; this keeps the promise
honest in CI.  Each fenced block runs in its own namespace (so docs
stay self-contained), with the working directory at the repo root.
Blocks opened with ```python only — other languages and plain fences
are ignored.  Exit code is the number of failing (doc, block) pairs.

A no-args run also *audits coverage*: it re-discovers every markdown
file under the repo root README and ``docs/`` (recursively) and fails
if any file containing ```python fences was not executed — so a newly
added docs page cannot silently sit outside the executed set (e.g. in
a subdirectory a narrower glob would miss).  Runs with explicit file
arguments are partial by design and skip the audit.

Run:  python tools/run_doc_snippets.py [FILE.md ...]
"""

from __future__ import annotations

import os
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def extract_blocks(text: str) -> list[tuple[int, str]]:
    """(start_line, source) for every ```python fence in *text*."""
    blocks = []
    lines = text.splitlines()
    in_block = False
    start = 0
    buf: list[str] = []
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not in_block and stripped == "```python":
            in_block = True
            start = lineno + 1
            buf = []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(buf)))
        elif in_block:
            buf.append(line)
    if in_block:
        raise ValueError(f"unclosed ```python fence starting at line {start}")
    return blocks


def run_file(path: Path) -> int:
    failures = 0
    try:
        rel = path.relative_to(REPO_ROOT)
    except ValueError:  # a CLI-passed file outside the repo
        rel = path
    for start, source in extract_blocks(path.read_text()):
        label = f"{rel}:{start}"
        try:
            code = compile(source, label, "exec")
            exec(code, {"__name__": f"doc_snippet:{label}"})
        except Exception:
            failures += 1
            print(f"FAIL {label}")
            traceback.print_exc()
        else:
            print(f"ok   {label}")
    return failures


def discover_documented() -> list[Path]:
    """Every markdown file the runnable-snippets promise covers."""
    targets = [REPO_ROOT / "README.md"]
    targets += sorted((REPO_ROOT / "docs").rglob("*.md"))
    return targets


def coverage_failures(executed: set[Path]) -> int:
    """Documented files with ```python fences that were never executed.

    Guards the discovery logic itself: if a docs page lands somewhere
    the execution list misses, its fences would silently rot — this
    re-scan turns that into a CI failure instead.
    """
    missed = 0
    for path in discover_documented():
        if path in executed or not path.exists():
            continue
        if extract_blocks(path.read_text()):
            rel = path.relative_to(REPO_ROOT)
            print(f"MISSED {rel}: has ```python fences but was not executed")
            missed += 1
    return missed


def main(argv: list[str]) -> int:
    os.chdir(REPO_ROOT)  # the docstring's promised working directory
    if argv:
        targets = [Path(a).resolve() for a in argv]
    else:
        targets = discover_documented()
    failures = 0
    for path in targets:
        failures += run_file(path)
    if not argv:
        failures += coverage_failures(set(targets))
    print(f"\n{'FAILED' if failures else 'all green'}: "
          f"{failures} failing snippet(s) across {len(targets)} file(s)")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
