"""Custom AST lint framework for the repo's hand-maintained invariants.

The tier-1 suite checks *behavior*; this layer checks the structural
rules that keep behavior checkable — seeded-RNG discipline, no wall
clock in the deterministic core, no iteration over unordered sets in
hot paths, and engine stat parity.  Rules are deliberately small: each
one encodes exactly one invariant that used to live only in ROADMAP
prose or review comments.

Two rule shapes:

* :class:`FileRule` — visits one parsed file at a time (scoped by path
  prefix).
* :class:`ProjectRule` — runs once over every parsed file, for
  cross-file invariants (e.g. "both engines assign the same
  RoutingStats fields").

Suppressions: append ``# lint: ok RULE_ID [reason]`` to the offending
line.  Suppressions are per-line and per-rule; a reason is encouraged.

Run:  python -m tools.lint [--list-rules] [--rule ID ...] [paths ...]
or via pytest: tests/test_lint.py asserts the tree is clean.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: directories scanned when no explicit paths are given
DEFAULT_SCAN_DIRS = ("src/repro",)

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok\s+([A-Z0-9, ]+)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, printable as ``path:line:col: RULE message``."""

    rule: str
    path: str  #: repo-relative, forward slashes
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """A parsed source file plus the helpers rules lean on."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, lineno: int, rule_id: str) -> bool:
        m = _SUPPRESS_RE.search(self.line_text(lineno))
        if not m:
            return False
        ids = {part.strip() for part in m.group(1).split(",")}
        return rule_id in ids


class Rule:
    """Base: rule id, one-line title, and the path scopes it covers."""

    id: str = ""
    title: str = ""
    #: repo-relative path prefixes this rule applies to
    scopes: tuple[str, ...] = ("src/repro",)

    def applies_to(self, relpath: str) -> bool:
        rel = relpath.replace("\\", "/")
        return any(rel.startswith(scope) for scope in self.scopes)


class FileRule(Rule):
    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError


def default_rules() -> list[Rule]:
    """One instance of every registered rule (import-time registry)."""
    from tools.lint import rules

    return [cls() for cls in rules.ALL_RULES]


def discover_files(
    root: Path = REPO_ROOT, paths: Sequence[str] | None = None
) -> list[Path]:
    """Python files to lint: explicit *paths*, else the default dirs."""
    if paths:
        out: list[Path] = []
        for p in paths:
            path = (root / p) if not Path(p).is_absolute() else Path(p)
            if path.is_dir():
                out.extend(sorted(path.rglob("*.py")))
            else:
                out.append(path)
        return out
    files: list[Path] = []
    for d in DEFAULT_SCAN_DIRS:
        files.extend(sorted((root / d).rglob("*.py")))
    return files


def run_lint(
    root: Path = REPO_ROOT,
    *,
    paths: Sequence[str] | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint the tree (or *paths*) and return all unsuppressed findings."""
    active = list(rules) if rules is not None else default_rules()
    file_rules = [r for r in active if isinstance(r, FileRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]

    contexts: dict[str, FileContext] = {}
    violations: list[Violation] = []
    for path in discover_files(root, paths):
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        rel = rel.replace("\\", "/")
        ctx = FileContext(rel, path.read_text())
        contexts[rel] = ctx
        for rule in file_rules:
            if not rule.applies_to(rel):
                continue
            for v in rule.check(ctx):
                if not ctx.suppressed(v.line, v.rule):
                    violations.append(v)

    for rule in project_rules:
        scoped = {
            rel: ctx for rel, ctx in contexts.items() if rule.applies_to(rel)
        }
        for v in rule.check_project(scoped):
            ctx = contexts.get(v.path)
            if ctx is not None and ctx.suppressed(v.line, v.rule):
                continue
            violations.append(v)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------------

def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of the callee, else None for computed callees."""
    return dotted_name(node.func)
