"""Run the repo lint: ``python -m tools.lint [paths ...]``.

Exit code 0 when clean, 1 when any violation is found (the CI gate),
2 on usage errors.  ``--list-rules`` prints the catalog; ``--rule``
restricts the run to specific rule ids.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.lint.framework import REPO_ROOT, default_rules, run_lint


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repo-invariant lint (seeded RNG, wall clock, "
        "unordered iteration, engine stat parity, event-kind order)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable), e.g. --rule REPRO003",
    )
    parser.add_argument(
        "--root", default=None, help="repo root (default: autodetected)"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
            print(f"         scope: {', '.join(rule.scopes)}")
        return 0
    if args.rule:
        wanted = set(args.rule)
        known = {r.id for r in rules}
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [r for r in rules if r.id in wanted]

    root = Path(args.root).resolve() if args.root else REPO_ROOT
    violations = run_lint(root, paths=args.paths or None, rules=rules)
    for v in violations:
        print(v.format())
    if violations:
        print(f"\n{len(violations)} violation(s)")
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
