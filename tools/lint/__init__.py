"""Repo-invariant lint framework (``python -m tools.lint``).

See :mod:`tools.lint.framework` for the architecture and
``docs/static_analysis.md`` for the rule catalog.
"""

from tools.lint.framework import (
    FileContext,
    FileRule,
    ProjectRule,
    Rule,
    Violation,
    default_rules,
    run_lint,
)

__all__ = [
    "FileContext",
    "FileRule",
    "ProjectRule",
    "Rule",
    "Violation",
    "default_rules",
    "run_lint",
]
