"""REPRO007: metric names are snake_case and registered under one kind.

The :class:`repro.obs.MetricsRegistry` enforces both properties at
runtime (``MetricsError``), but only on code paths a test actually
drives.  This rule checks them statically at every registration site in
``src/repro`` — calls of the registry methods (``counter`` / ``gauge`` /
``histogram``) and the :class:`~repro.obs.Observer` convenience hooks
(``count`` / ``gauge`` / ``observe``) whose first argument is a string
literal:

* the name must match ``^[a-z][a-z0-9_]*$`` (snake_case, no dots or
  dashes — JSON snapshot keys stay shell- and grep-friendly);
* across the whole tree, one name maps to one metric kind — a counter
  named ``backlog`` in one module and a gauge named ``backlog`` in
  another would shadow each other the moment both run against a shared
  registry, which the registry rejects at runtime; the lint catches it
  before any run does.

Dynamically built names (f-strings, variables) are out of scope; keep
variability in labels, not names.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.lint.framework import FileContext, ProjectRule, Violation

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: registration-method name -> metric kind it registers
METHOD_KINDS = {
    "counter": "counter",
    "count": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "observe": "histogram",
}


class MetricNamesRule(ProjectRule):
    id = "REPRO007"
    title = "metric names snake_case, one kind per name"
    scopes = ("src/repro",)

    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Violation]:
        #: name -> (kind, relpath, lineno) of the first registration
        seen: dict[str, tuple[str, str, int]] = {}
        for relpath in sorted(files):
            ctx = files[relpath]
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                kind = METHOD_KINDS.get(func.attr)
                if kind is None or not node.args:
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                    continue
                name = first.value
                if not _NAME_RE.match(name):
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        f"metric name {name!r} is not snake_case "
                        "(^[a-z][a-z0-9_]*$)",
                    )
                    continue
                prior = seen.get(name)
                if prior is None:
                    seen[name] = (kind, ctx.relpath, node.lineno)
                elif prior[0] != kind:
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        f"metric {name!r} registered as {kind} here but as "
                        f"{prior[0]} at {prior[1]}:{prior[2]}; one name, "
                        "one kind",
                    )
