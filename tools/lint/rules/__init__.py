"""Rule registry: one class per hand-maintained invariant.

Rule catalog (docs/static_analysis.md has the long-form version):

* REPRO001 ``seeded-rng`` — no unseeded/global RNG in ``src/repro``.
* REPRO002 ``wall-clock`` — no wall-clock calls in the deterministic core.
* REPRO003 ``unordered-iter`` — no order-sensitive iteration over sets
  in hot-path modules.
* REPRO004 ``stat-parity`` — both routing engines assign the same
  ``RoutingStats`` fields.
* REPRO005 ``event-kind-order`` — fault code honors the canonical
  ``EVENT_KINDS`` tuple (vocabulary + sort order).
* REPRO006 ``hash-placement`` — ``PolynomialHash`` is constructed only
  inside ``hashing/`` and ``sharding/`` (placement stays centralized).
* REPRO007 ``metric-names`` — observability metric names are
  snake_case and each name registers exactly one metric kind.
"""

from __future__ import annotations

from tools.lint.rules.engine_parity import EventKindOrderRule, StatParityRule
from tools.lint.rules.hash_placement import HashPlacementRule
from tools.lint.rules.metric_names import MetricNamesRule
from tools.lint.rules.seeded_rng import SeededRngRule
from tools.lint.rules.unordered_iter import UnorderedIterRule
from tools.lint.rules.wall_clock import WallClockRule

ALL_RULES = [
    SeededRngRule,
    WallClockRule,
    UnorderedIterRule,
    StatParityRule,
    EventKindOrderRule,
    HashPlacementRule,
    MetricNamesRule,
]

__all__ = [
    "ALL_RULES",
    "EventKindOrderRule",
    "HashPlacementRule",
    "MetricNamesRule",
    "SeededRngRule",
    "StatParityRule",
    "UnorderedIterRule",
    "WallClockRule",
]
