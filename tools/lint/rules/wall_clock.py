"""REPRO002: no wall-clock reads in the deterministic core.

The engines, emulators, fault runtime, and traffic driver advance a
*virtual* clock (network steps / epochs); results must be a pure
function of (inputs, seed).  A wall-clock read anywhere in that core is
either dead weight or a nondeterminism leak, so ``time.*`` clock calls,
``time.sleep``, and ``datetime`` "now" constructors are banned inside
``src/repro``.  Benchmarks and tools measure wall time legitimately and
are out of scope.

One file is exempt: ``src/repro/obs/clock.py``, the observability
layer's single wall-clock chokepoint.  Every instrumented surface calls
``repro.obs.clock.wall_time`` instead of ``time``, so this rule keeps
protecting the rest of the core while profiling stays possible —
recorded wall times are never branched on (that invariant is what the
bit-identity differential tests pin).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.framework import FileContext, FileRule, Violation, call_name

BANNED_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "sleep",
}

#: attribute names that read "now" off datetime/date objects
BANNED_NOW_ATTRS = {"now", "utcnow", "today"}

#: the one sanctioned wall-clock chokepoint (see module docstring)
EXEMPT_FILES = ("src/repro/obs/clock.py",)


class WallClockRule(FileRule):
    id = "REPRO002"
    title = "no wall-clock calls in engine/emulator code"
    scopes = ("src/repro",)

    def applies_to(self, relpath: str) -> bool:
        rel = relpath.replace("\\", "/")
        if rel in EXEMPT_FILES:
            return False
        return super().applies_to(relpath)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # names bound by `from time import perf_counter [as pc]`
        time_aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME_FUNCS:
                        time_aliases[alias.asname or alias.name] = alias.name

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "time" and parts[1] in BANNED_TIME_FUNCS:
                yield Violation(
                    self.id,
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {name}(); the core runs on the "
                    "virtual clock only",
                )
            elif len(parts) == 1 and parts[0] in time_aliases:
                yield Violation(
                    self.id,
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {time_aliases[parts[0]]}() (imported "
                    "from time); the core runs on the virtual clock only",
                )
            elif (
                len(parts) >= 2
                and parts[-1] in BANNED_NOW_ATTRS
                and any(p in ("datetime", "date") for p in parts[:-1])
            ):
                yield Violation(
                    self.id,
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {name}(); the core runs on the "
                    "virtual clock only",
                )
