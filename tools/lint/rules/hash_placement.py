"""REPRO006: centralized hash placement.

Address placement is a *two-level* contract: the sharding layer's
global hash picks the shard, each emulator's family-sampled hash picks
the module (``docs/sharding.md``).  Both levels draw their
``PolynomialHash`` through :class:`repro.hashing.family.HashFamily`, so
degree parameters, the prime modulus, and the seed derivation stay in
one place.  A ``PolynomialHash(...)`` constructed by hand anywhere else
bypasses that — hand-picked coefficients silently break the balance
guarantees (Lemma 2.2) every emulation bound rests on, and a placement
decision ends up living outside the placement layers.

Hence: direct ``PolynomialHash`` construction is only allowed inside
``src/repro/hashing/`` and ``src/repro/sharding/``.  Everything else
must go through ``HashFamily.sample`` (or take a ready hash as an
argument).  Suppress a deliberate exception with
``# lint: ok REPRO006 <reason>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.framework import FileContext, FileRule, Violation, call_name

#: the only packages allowed to construct PolynomialHash directly
ALLOWED_PREFIXES = ("src/repro/hashing/", "src/repro/sharding/")


class HashPlacementRule(FileRule):
    id = "REPRO006"
    title = "PolynomialHash construction only inside hashing/ and sharding/"
    scopes = ("src/repro",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.relpath.startswith(ALLOWED_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name.split(".")[-1] == "PolynomialHash":
                yield Violation(
                    self.id,
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    "direct PolynomialHash construction outside the "
                    "placement layers; sample it via HashFamily "
                    "(repro.hashing.family) so placement stays centralized",
                )
