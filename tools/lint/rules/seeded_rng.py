"""REPRO001: seeded-RNG discipline.

Every randomized component must be reproducible from a single integer
seed (``repro.util.rng``).  That breaks the moment anything draws from
an unseeded or process-global source, so inside ``src/repro``:

* the stdlib ``random`` module is banned outright (global, unseedable
  per call site);
* ``np.random.default_rng()`` must receive an explicit seed argument —
  ``default_rng(seed)`` and even ``default_rng(None)`` are fine (the
  caller visibly opted into entropy), a bare zero-argument call is not;
* the legacy global numpy API (``np.random.seed``, ``np.random.rand``,
  ``np.random.choice``, ...) is banned; only the ``Generator``-family
  constructors are allowed through ``np.random``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.framework import FileContext, FileRule, Violation, call_name

#: np.random attributes that are constructors, not global-state draws
ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class SeededRngRule(FileRule):
    id = "REPRO001"
    title = "seeded-RNG discipline (no bare random.* / unseeded default_rng)"
    scopes = ("src/repro",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # names bound by `from numpy.random import X [as Y]`
        np_random_aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield Violation(
                            self.id,
                            ctx.relpath,
                            node.lineno,
                            node.col_offset,
                            "stdlib `random` is process-global and unseeded "
                            "here; use repro.util.rng.as_generator(seed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        "stdlib `random` is process-global and unseeded "
                        "here; use repro.util.rng.as_generator(seed)",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        np_random_aliases[alias.asname or alias.name] = alias.name

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            # np.random.X(...) / numpy.random.X(...)
            if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                attr = parts[2]
                if attr not in ALLOWED_NP_RANDOM:
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        f"legacy global-state RNG call np.random.{attr}(); "
                        "draw from a seeded Generator instead",
                    )
                elif attr == "default_rng" and not node.args and not node.keywords:
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without an explicit seed "
                        "argument; pass the run's seed (or an explicit None)",
                    )
            # bare default_rng(...) imported from numpy.random
            elif len(parts) == 1 and parts[0] in np_random_aliases:
                original = np_random_aliases[parts[0]]
                if original == "default_rng" and not node.args and not node.keywords:
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        "default_rng() without an explicit seed argument; "
                        "pass the run's seed (or an explicit None)",
                    )
                elif original not in ALLOWED_NP_RANDOM:
                    yield Violation(
                        self.id,
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        f"legacy global-state RNG call {original}() "
                        "(imported from numpy.random)",
                    )
