"""REPRO004 / REPRO005: keep the two engines and the fault layer in sync.

The differential tests prove the reference and fast engines agree on
the runs they exercise; these rules prove the *code* cannot silently
drift on the axes the tests don't enumerate:

* REPRO004 ``stat-parity`` — every ``RoutingStats`` field passed to
  ``collect_stats(...)`` / ``RoutingStats(...)`` in ``routing/engine.py``
  must also be passed in ``routing/fast_engine.py`` (and vice versa),
  every call site within a file must pass the same field set, and every
  keyword must actually exist on ``collect_stats`` /``RoutingStats``.
  Adding a counter to one engine only now fails lint instead of
  surfacing as a baffling differential-test diff three PRs later.
* REPRO005 ``event-kind-order`` — ``EVENT_KINDS`` in ``faults/plan.py``
  stays a tuple literal of unique strings (it *is* the same-step
  ordering contract), every ``.kind`` string comparison in ``faults/``
  uses vocabulary from that tuple (typo guard), and every ``sorted()``
  over events whose key reads ``.kind`` ranks via ``EVENT_KINDS`` —
  never ad-hoc string order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.framework import FileContext, ProjectRule, Violation

METRICS_PATH = "src/repro/routing/metrics.py"
ENGINE_PATHS = ("src/repro/routing/engine.py", "src/repro/routing/fast_engine.py")
PLAN_PATH = "src/repro/faults/plan.py"


def _routing_stats_fields(ctx: FileContext) -> set[str]:
    """Names of RoutingStats dataclass fields (AnnAssign in class body)."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == "RoutingStats":
            fields: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields.add(stmt.target.id)
            return fields
    return set()


def _collect_stats_params(ctx: FileContext) -> set[str]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "collect_stats":
            names = {a.arg for a in node.args.args}
            names |= {a.arg for a in node.args.kwonlyargs}
            names.discard("packets")
            return names
    return set()


def _stat_call_sites(ctx: FileContext) -> list[tuple[int, frozenset[str]]]:
    """(line, kwarg-name set) per collect_stats/RoutingStats call site."""
    sites: list[tuple[int, frozenset[str]]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee not in ("collect_stats", "RoutingStats"):
            continue
        if any(kw.arg is None for kw in node.keywords):
            continue  # **kwargs call: not statically checkable
        names = frozenset(kw.arg for kw in node.keywords if kw.arg is not None)
        sites.append((node.lineno, names))
    return sites


class StatParityRule(ProjectRule):
    id = "REPRO004"
    title = "engine stat parity: both engines assign the same RoutingStats fields"
    scopes = ("src/repro/routing",)

    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Violation]:
        metrics = files.get(METRICS_PATH)
        engines = {p: files.get(p) for p in ENGINE_PATHS}
        if metrics is None or any(v is None for v in engines.values()):
            return  # partial lint invocation: nothing to cross-check

        fields = _routing_stats_fields(metrics)
        params = _collect_stats_params(metrics)
        if not fields or not params:
            yield Violation(
                self.id,
                METRICS_PATH,
                1,
                0,
                "could not locate RoutingStats fields / collect_stats "
                "parameters — the stat-parity contract has no anchor",
            )
            return
        legal = fields | params

        unions: dict[str, frozenset[str]] = {}
        first_line: dict[str, int] = {}
        for path, ctx in engines.items():
            assert ctx is not None
            sites = _stat_call_sites(ctx)
            if not sites:
                yield Violation(
                    self.id,
                    path,
                    1,
                    0,
                    "no collect_stats()/RoutingStats() call site found; "
                    "the engine no longer reports stats?",
                )
                continue
            union: frozenset[str] = frozenset()
            for line, names in sites:
                union |= names
                unknown = names - legal
                if unknown:
                    yield Violation(
                        self.id,
                        path,
                        line,
                        0,
                        "unknown RoutingStats field(s) "
                        f"{sorted(unknown)} passed to collect_stats",
                    )
            for line, names in sites:
                missing = union - names
                if missing:
                    yield Violation(
                        self.id,
                        path,
                        line,
                        0,
                        f"call site omits stat field(s) {sorted(missing)} "
                        "that sibling sites in this engine set",
                    )
            unions[path] = union
            first_line[path] = sites[0][0]

        if len(unions) == len(ENGINE_PATHS):
            a, b = ENGINE_PATHS
            for here, there in ((a, b), (b, a)):
                gap = unions[there] - unions[here]
                if gap:
                    yield Violation(
                        self.id,
                        here,
                        first_line[here],
                        0,
                        f"stat field(s) {sorted(gap)} are set in "
                        f"{there.rsplit('/', 1)[-1]} but never here — "
                        "engines must assign identical RoutingStats fields",
                    )


class EventKindOrderRule(ProjectRule):
    id = "REPRO005"
    title = "fault events honor the canonical EVENT_KINDS tuple"
    scopes = ("src/repro/faults",)

    def _event_kinds(
        self, files: dict[str, FileContext]
    ) -> tuple[list[str] | None, list[Violation]]:
        plan = files.get(PLAN_PATH)
        if plan is None:
            return None, []
        for node in ast.walk(plan.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "EVENT_KINDS"
                for t in node.targets
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Tuple):
                return None, [
                    Violation(
                        self.id,
                        PLAN_PATH,
                        node.lineno,
                        node.col_offset,
                        "EVENT_KINDS must be a tuple literal (its element "
                        "order is the same-step application contract)",
                    )
                ]
            kinds: list[str] = []
            for elt in value.elts:
                if not (
                    isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ):
                    return None, [
                        Violation(
                            self.id,
                            PLAN_PATH,
                            elt.lineno,
                            elt.col_offset,
                            "EVENT_KINDS entries must be string literals",
                        )
                    ]
                kinds.append(elt.value)
            if len(set(kinds)) != len(kinds):
                return None, [
                    Violation(
                        self.id,
                        PLAN_PATH,
                        node.lineno,
                        node.col_offset,
                        "EVENT_KINDS contains duplicate kinds",
                    )
                ]
            return kinds, []
        return None, [
            Violation(
                self.id,
                PLAN_PATH,
                1,
                0,
                "EVENT_KINDS tuple not found in faults/plan.py",
            )
        ]

    def check_project(
        self, files: dict[str, FileContext]
    ) -> Iterator[Violation]:
        if PLAN_PATH not in files:
            return  # partial lint invocation
        kinds, problems = self._event_kinds(files)
        yield from problems
        if kinds is None:
            return
        vocab = set(kinds)

        for path, ctx in sorted(files.items()):
            for node in ast.walk(ctx.tree):
                # `x.kind == "..."` / `!=` / `in ("...", ...)` vocabulary
                if isinstance(node, ast.Compare):
                    sides = [node.left, *node.comparators]
                    if not any(
                        isinstance(s, ast.Attribute) and s.attr == "kind"
                        for s in sides
                    ):
                        continue
                    for s in sides:
                        literals: list[ast.Constant] = []
                        if isinstance(s, ast.Constant) and isinstance(
                            s.value, str
                        ):
                            literals = [s]
                        elif isinstance(s, (ast.Tuple, ast.List, ast.Set)):
                            literals = [
                                e
                                for e in s.elts
                                if isinstance(e, ast.Constant)
                                and isinstance(e.value, str)
                            ]
                        for lit in literals:
                            if lit.value not in vocab:
                                yield Violation(
                                    self.id,
                                    path,
                                    lit.lineno,
                                    lit.col_offset,
                                    f"unknown fault-event kind {lit.value!r} "
                                    f"(EVENT_KINDS = {kinds})",
                                )
                # sorted(events, key=...) must rank kinds via EVENT_KINDS
                elif isinstance(node, ast.Call):
                    if not (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "sorted"
                    ):
                        continue
                    for kw in node.keywords:
                        if kw.arg != "key":
                            continue
                        key_src = ast.dump(kw.value)
                        reads_kind = "attr='kind'" in key_src
                        uses_table = "EVENT_KINDS" in key_src or any(
                            isinstance(n, ast.Name)
                            and n.id.endswith("sort_key")
                            for n in ast.walk(kw.value)
                        )
                        if reads_kind and not uses_table:
                            yield Violation(
                                self.id,
                                path,
                                node.lineno,
                                node.col_offset,
                                "event sort key reads .kind but does not "
                                "rank via EVENT_KINDS — same-step ordering "
                                "must use the canonical tuple",
                            )
