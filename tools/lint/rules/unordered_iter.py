"""REPRO003: no order-sensitive iteration over sets in hot paths.

Both engines promise bit-identical results under a fixed seed, and the
emulators promise run-to-run determinism.  Iterating a ``set`` /
``frozenset`` in an order-sensitive position is the classic way to leak
nondeterminism into that contract (hash order is an implementation
detail — stable for small ints today, not part of the promise).  In the
hot-path packages, iterate ``sorted(the_set)`` instead; membership
tests and order-insensitive reductions (``len``/``sum``/``min``/
``max``/``any``/``all``/``sorted``/set-to-set conversions) stay free.

Set-typedness is inferred per scope from: set/frozenset literals,
comprehensions and constructor calls; ``|``/``&``/``-``/``^`` algebra
and ``.union()``-family methods on set-typed operands; parameter and
variable annotations; and a small table of known set-returning calls in
this codebase (``LinkFaultView.parts_at`` / ``LinkFaultTimeline.segment_at``
return a frozenset first slot).  The inference is deliberately local
and conservative: it will miss sets smuggled across module boundaries,
but never flags a non-set.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.framework import FileContext, FileRule, Violation

#: method name -> tuple-unpack slots that are sets (codebase knowledge)
KNOWN_SET_RETURNS: dict[str, tuple[int, ...]] = {
    "parts_at": (0,),
    "segment_at": (0,),
}

SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)

#: callables whose result does not depend on argument iteration order
ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
    "bool",
}

#: callables that materialize/propagate iteration order from arguments
ORDER_SENSITIVE_CALLS = {
    "list",
    "tuple",
    "iter",
    "enumerate",
    "next",
    "zip",
    "map",
    "filter",
    "reversed",
}


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):  # typing.Set / typing.FrozenSet
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset")
    return False


class _Scope:
    """One lexical scope's set-typed names and its statements."""

    def __init__(self, root: ast.AST) -> None:
        self.root = root
        self.set_names: set[str] = set()
        #: names holding a tuple whose given slots are sets (bound from a
        #: KNOWN_SET_RETURNS call, unpacked later)
        self.tuple_slots: dict[str, tuple[int, ...]] = {}

    def nodes(self) -> Iterator[ast.AST]:
        """Walk the scope without descending into nested function scopes."""
        stack: list[ast.AST] = [self.root]
        while stack:
            node = stack.pop()
            is_root = node is self.root
            if not is_root and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scope: handled separately
            yield node
            stack.extend(ast.iter_child_nodes(node))


class UnorderedIterRule(FileRule):
    id = "REPRO003"
    title = "no order-sensitive iteration over sets in hot-path modules"
    scopes = (
        "src/repro/routing",
        "src/repro/emulation",
        "src/repro/faults",
        "src/repro/traffic",
        "src/repro/topology",
    )

    # -- set-typedness ---------------------------------------------------
    def _is_set_expr(self, node: ast.expr, scope: _Scope) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in scope.set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_METHODS
                and self._is_set_expr(node.func.value, scope)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            return self._is_set_expr(node.left, scope) or self._is_set_expr(
                node.right, scope
            )
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body, scope) and self._is_set_expr(
                node.orelse, scope
            )
        return False

    def _infer_set_names(self, scope: _Scope) -> None:
        root = scope.root
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = root.args
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if _annotation_is_set(a.annotation):
                    scope.set_names.add(a.arg)
        # fixed point over simple assignments (sets assigned from sets);
        # progress is growth of *either* table — tuple_slots feeds
        # set_names one iteration later (two-step unpack)
        for _ in range(3):
            before = (len(scope.set_names), len(scope.tuple_slots))
            for node in scope.nodes():
                if isinstance(node, ast.AnnAssign):
                    if _annotation_is_set(node.annotation) and isinstance(
                        node.target, ast.Name
                    ):
                        scope.set_names.add(node.target.id)
                elif isinstance(node, ast.Assign):
                    value = node.value
                    slots: tuple[int, ...] | None = None
                    if isinstance(value, ast.Call):
                        func = value.func
                        if (
                            isinstance(func, ast.Attribute)
                            and func.attr in KNOWN_SET_RETURNS
                        ):
                            slots = KNOWN_SET_RETURNS[func.attr]
                    elif (
                        isinstance(value, ast.Name)
                        and value.id in scope.tuple_slots
                    ):
                        slots = scope.tuple_slots[value.id]
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if self._is_set_expr(value, scope):
                                scope.set_names.add(target.id)
                            if slots is not None:
                                scope.tuple_slots[target.id] = slots
                        elif isinstance(target, ast.Tuple) and slots is not None:
                            for slot in slots:
                                if slot >= len(target.elts):
                                    continue
                                elt = target.elts[slot]
                                if isinstance(elt, ast.Name):
                                    scope.set_names.add(elt.id)
            if (len(scope.set_names), len(scope.tuple_slots)) == before:
                break

    # -- iteration contexts ----------------------------------------------
    def _wrapped_order_insensitive(self, node: ast.AST, ctx: FileContext) -> bool:
        """Is *node* directly an argument of an order-insensitive call?"""
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CALLS
            and node in parent.args
        )

    def _violation(self, ctx: FileContext, node: ast.AST, what: str) -> Violation:
        return Violation(
            self.id,
            ctx.relpath,
            node.lineno,
            node.col_offset,
            f"order-sensitive iteration over unordered set in {what}; "
            "iterate sorted(...) instead",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        scopes = [_Scope(ctx.tree)]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(_Scope(node))

        for scope in scopes:
            self._infer_set_names(scope)
            for node in scope.nodes():
                if isinstance(node, ast.For):
                    if self._is_set_expr(node.iter, scope):
                        yield self._violation(ctx, node.iter, "for loop")
                elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                    if isinstance(node, ast.GeneratorExp) and (
                        self._wrapped_order_insensitive(node, ctx)
                    ):
                        continue
                    for comp in node.generators:
                        if self._is_set_expr(comp.iter, scope):
                            yield self._violation(ctx, comp.iter, "comprehension")
                elif isinstance(node, ast.Call):
                    func = node.func
                    sensitive_args: list[ast.expr] = []
                    if (
                        isinstance(func, ast.Name)
                        and func.id in ORDER_SENSITIVE_CALLS
                    ):
                        sensitive_args = list(node.args)
                    elif isinstance(func, ast.Attribute) and func.attr == "join":
                        sensitive_args = list(node.args[:1])
                    for arg in sensitive_args:
                        if self._is_set_expr(arg, scope):
                            if self._wrapped_order_insensitive(node, ctx):
                                continue
                            yield self._violation(
                                ctx, arg, f"{ast.unparse(func)}(...) call"
                            )
