"""Repo tooling: doc-snippet runner, example smoke runner, lint."""
